package jobs_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"aaws/internal/jobs"
)

const specBody = `{"kernel":"cilksort","variant":"base+psm","seed":9001}`

func postWithTenant(t *testing.T, url, tenant string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-AAWS-Client", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, m
}

// TestTenantFromHeader checks the identity plumbing end to end: the
// X-AAWS-Client header becomes the job's tenant, visible in the status
// response and per-tenant metrics.
func TestTenantFromHeader(t *testing.T) {
	ts, ex := newTestServer(t, jobs.Config{Workers: 2})
	resp, m := postWithTenant(t, ts.URL+"/v1/jobs", "team-a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (%v)", resp.StatusCode, m)
	}
	st := awaitJob(t, ts.URL, m["id"].(string))
	if st["tenant"] != "team-a" {
		t.Fatalf("job status tenant = %v, want team-a", st["tenant"])
	}
	tm := ex.Metrics().PerTenant["team-a"]
	if tm.Submitted != 1 || tm.Completed != 1 {
		t.Fatalf("team-a submitted/completed = %d/%d, want 1/1", tm.Submitted, tm.Completed)
	}
}

// TestTenantHeaderValidation checks rejection of degenerate identities: a
// present-but-empty header and an oversized one are both 400s, before any
// admission work happens.
func TestTenantHeaderValidation(t *testing.T) {
	ts, ex := newTestServer(t, jobs.Config{Workers: 1})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(specBody))
	req.Header["X-Aaws-Client"] = []string{""} // present but empty
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty tenant header: status = %d, want 400", resp.StatusCode)
	}

	long, _ := postWithTenant(t, ts.URL+"/v1/jobs", strings.Repeat("x", 129))
	if long.StatusCode != http.StatusBadRequest {
		t.Fatalf("129-byte tenant: status = %d, want 400", long.StatusCode)
	}
	if max, _ := postWithTenant(t, ts.URL+"/v1/jobs", strings.Repeat("x", 128)); max.StatusCode != http.StatusAccepted {
		t.Fatalf("128-byte tenant: status = %d, want 202", max.StatusCode)
	}
	if got := ex.Metrics().Submitted; got != 1 {
		t.Fatalf("submitted = %d, want 1 (rejected identities must not reach admission)", got)
	}
}

// TestTenantFallsBackToRemoteHost checks that without the header the remote
// host (not host:port, which changes per connection) identifies the client.
func TestTenantFallsBackToRemoteHost(t *testing.T) {
	ts, ex := newTestServer(t, jobs.Config{Workers: 2})
	resp, m := postWithTenant(t, ts.URL+"/v1/jobs", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (%v)", resp.StatusCode, m)
	}
	awaitJob(t, ts.URL, m["id"].(string))
	pt := ex.Metrics().PerTenant
	if _, ok := pt["127.0.0.1"]; !ok {
		t.Fatalf("expected tenant 127.0.0.1 from RemoteAddr fallback, got %v", keys(pt))
	}
}

func keys(m map[string]jobs.TenantMetrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRetryErrorBody checks the structured overload rejection: the JSON body
// carries retry_after_s matching the Retry-After header (whole seconds,
// rounded up, never 0) plus deterministic-jitter guidance.
func TestRetryErrorBody(t *testing.T) {
	cache, err := jobs.NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	ex := jobs.NewExecutor(jobs.Config{Workers: 1, Cache: cache})
	t.Cleanup(ex.Close)
	ts := httptest.NewServer(jobs.NewServerWithOptions(ex, jobs.ServerOptions{
		RatePerSec: 0.5, // refill is 2s/token: Retry-After must round up, not truncate to 0
		Burst:      1,
	}))
	t.Cleanup(ts.Close)

	if resp, m := postWithTenant(t, ts.URL+"/v1/jobs", "greedy"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: status = %d (%v)", resp.StatusCode, m)
	}
	resp, m := postWithTenant(t, ts.URL+"/v1/jobs", "greedy")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission: status = %d, want 429 (%v)", resp.StatusCode, m)
	}
	header, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64)
	if err != nil || header < 1 {
		t.Fatalf("Retry-After header = %q, want a whole second >= 1", resp.Header.Get("Retry-After"))
	}
	body, ok := m["retry_after_s"].(float64)
	if !ok || int64(body) != header {
		t.Fatalf("body retry_after_s = %v, want header value %d", m["retry_after_s"], header)
	}
	hint, _ := m["retry_hint"].(string)
	if !strings.Contains(hint, "jitter") {
		t.Fatalf("retry_hint = %q, want jitter guidance", hint)
	}

	// A different tenant is not rate limited by greedy's bucket (202, or 200
	// if greedy's identical spec already finished and this is a cache hit).
	if resp, m := postWithTenant(t, ts.URL+"/v1/jobs", "patient"); resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status = %d, want 202/200 (%v)", resp.StatusCode, m)
	}
}
