package jobs_test

import (
	"context"
	"sync"
	"testing"

	"aaws/internal/core"
	"aaws/internal/jobs"
)

// TestRecoveryPreservesTenantWFQ crashes an executor with two tenants'
// backlogs journaled and asserts that after replay the WFQ scheduler still
// sees the tenants: recovery must carry Tenant through the journal, and the
// rebuilt queue must serve the tenants fairly rather than collapsing into
// one anonymous FIFO backlog (which would drain a,a,a,b,b,b).
func TestRecoveryPreservesTenantWFQ(t *testing.T) {
	dir := t.TempDir()
	j1, pending := openJournal(t, dir, 1<<20)
	if len(pending) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(pending))
	}

	// ex1: the only worker is held by a sentinel so the tenant backlogs are
	// journaled but still queued at the crash.
	hold := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	ex1 := jobs.NewExecutor(jobs.Config{
		Workers: 1,
		Journal: j1,
		QoS:     jobs.QoSConfig{Policy: jobs.PolicyWFQ},
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			once.Do(func() { close(started) })
			select {
			case <-hold:
			case <-ctx.Done():
			}
			return fakeResult(spec), nil
		},
	})
	if _, err := ex1.Submit(testSpec(1), jobs.SubmitOptions{NoCache: true}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Tenant a's full backlog arrives before tenant b's: FIFO replay order.
	for ti, tenant := range []string{"a", "b"} {
		for i := 0; i < 3; i++ {
			_, err := ex1.Submit(testSpec(seedFor(ti, i)), jobs.SubmitOptions{Tenant: tenant, NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash: abandon ex1 without Close or Drain — the journal on disk is all
	// that survives.

	j2, pending := openJournal(t, dir, 1<<20)
	defer j2.Close()
	if len(pending) != 7 {
		t.Fatalf("replayed %d jobs, want 7 (sentinel + 6 tenant jobs)", len(pending))
	}
	tenants := map[string]int{}
	for _, p := range pending {
		tenants[p.Tenant]++
	}
	if tenants["a"] != 3 || tenants["b"] != 3 {
		t.Fatalf("journal lost tenant attribution: %v", tenants)
	}

	// ex2: recovery target. The start gate holds every replayed job until
	// Recover has queued the full backlog, so the dispatch order below is
	// purely the scheduler's choice, not replay timing.
	rec := &dispatchRecorder{}
	startGate := make(chan struct{})
	ex2 := jobs.NewExecutor(jobs.Config{
		Workers: 1,
		Journal: j2,
		QoS:     jobs.QoSConfig{Policy: jobs.PolicyWFQ},
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			select {
			case <-startGate:
			case <-ctx.Done():
				return core.Result{}, ctx.Err()
			}
			if spec.Seed == 1 { // the replayed sentinel is not part of the order
				return fakeResult(spec), nil
			}
			return rec.run(ctx, spec)
		},
	})
	defer ex2.Close()
	n, err := ex2.Recover(pending)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("recovered %d jobs, want 7", n)
	}
	close(startGate)
	for _, p := range pending {
		waitDone(t, ex2, p.ID)
	}

	order := rec.order()
	if len(order) != 6 {
		t.Fatalf("dispatched %d tenant jobs, want 6", len(order))
	}
	// WFQ over a replayed two-tenant backlog must interleave: in every
	// prefix the tenants stay within 2 dispatches of each other. A recovery
	// path that dropped Tenant would replay arrival order a,a,a,b,b,b and
	// skew to 3 by the third dispatch.
	counts := [2]int{}
	for i, seed := range order {
		counts[tenantOf(seed)]++
		diff := counts[0] - counts[1]
		if diff < 0 {
			diff = -diff
		}
		if diff > 2 {
			t.Fatalf("after %d dispatches tenant split %d/%d — recovery lost WFQ fairness; order: %v",
				i+1, counts[0], counts[1], order[:i+1])
		}
	}
}
