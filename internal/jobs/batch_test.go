package jobs_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"aaws/internal/core"
	"aaws/internal/jobs"
)

// TestSubmitBatchGang: fresh members of a batch execute through one batch
// runner invocation (the gang), not one executor round-trip per cell, and
// every member completes with its own spec's result bytes.
func TestSubmitBatchGang(t *testing.T) {
	var batchCalls, cellsSeen atomic.Int64
	ex := jobs.NewExecutor(jobs.Config{
		Workers: 2,
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			t.Error("per-cell runner invoked; gang must use the batch runner")
			return fakeResult(spec), nil
		},
		BatchRunner: func(ctx context.Context, specs []core.Spec) ([]core.Result, error) {
			batchCalls.Add(1)
			cellsSeen.Add(int64(len(specs)))
			results := make([]core.Result, len(specs))
			for i, spec := range specs {
				results[i] = fakeResult(spec)
			}
			return results, nil
		},
	})
	defer ex.Close()

	specs := []core.Spec{testSpec(1), testSpec(2), testSpec(3)}
	batch, err := ex.SubmitBatch(specs, jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(specs) {
		t.Fatalf("SubmitBatch returned %d jobs for %d specs", len(batch), len(specs))
	}
	for i, job := range batch {
		snap := waitDone(t, ex, job.ID)
		if snap.State != jobs.StateDone {
			t.Fatalf("member %d state = %s, err = %v", i, snap.State, snap.Err)
		}
		if len(snap.Data) == 0 {
			t.Fatalf("member %d completed without result bytes", i)
		}
	}
	if got := batchCalls.Load(); got != 1 {
		t.Errorf("batch runner invoked %d times for one gang, want 1", got)
	}
	if got := cellsSeen.Load(); got != int64(len(specs)) {
		t.Errorf("batch runner saw %d cells, want %d", got, len(specs))
	}
}

// TestSubmitBatchCacheHit: a member whose result is already cached resolves
// from the cache and stays out of the gang — the batch runner sees only the
// fresh cells.
func TestSubmitBatchCacheHit(t *testing.T) {
	var gangCells atomic.Int64
	cache, _ := jobs.NewCache(16, "")
	ex := jobs.NewExecutor(jobs.Config{
		Workers: 2,
		Cache:   cache,
		BatchRunner: func(ctx context.Context, specs []core.Spec) ([]core.Result, error) {
			gangCells.Add(int64(len(specs)))
			results := make([]core.Result, len(specs))
			for i, spec := range specs {
				results[i] = fakeResult(spec)
			}
			return results, nil
		},
	})
	defer ex.Close()

	// Prime the cache with spec 1 via a single-member batch.
	warm, err := ex.SubmitBatch([]core.Spec{testSpec(1)}, jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ex, warm[0].ID)

	batch, err := ex.SubmitBatch([]core.Spec{testSpec(1), testSpec(2)}, jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hit := waitDone(t, ex, batch[0].ID)
	if !hit.CacheHit {
		t.Error("cached member not served from cache")
	}
	fresh := waitDone(t, ex, batch[1].ID)
	if fresh.State != jobs.StateDone {
		t.Fatalf("fresh member state = %s, err = %v", fresh.State, fresh.Err)
	}
	if got := gangCells.Load(); got != 2 { // 1 warm + 1 fresh; the hit never re-runs
		t.Errorf("batch runner saw %d cells total, want 2 (cache hit must not re-run)", got)
	}
}

// TestSubmitBatchAtomicRejection: if a later cell is rejected at admission,
// the whole batch fails and earlier fresh members are canceled — a batch
// starts fully formed or not at all.
func TestSubmitBatchAtomicRejection(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	ex := jobs.NewExecutor(jobs.Config{
		Workers:    1,
		QueueDepth: 2,
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			started <- struct{}{}
			<-release
			return fakeResult(spec), nil
		},
	})
	defer ex.Close()
	defer close(release)

	// Occupy the worker so queued members stay queued.
	blocker, err := ex.Submit(testSpec(99), jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Three fresh cells against a depth-2 queue: cell 2 must reject, and
	// the earlier members must come back canceled rather than linger.
	batch, err := ex.SubmitBatch(
		[]core.Spec{testSpec(1), testSpec(2), testSpec(3)}, jobs.SubmitOptions{})
	if !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if batch != nil {
		t.Fatal("failed SubmitBatch returned jobs")
	}
	m := ex.Metrics()
	if m.Canceled != 2 {
		t.Errorf("canceled = %d after atomic batch rejection, want 2", m.Canceled)
	}
	_ = blocker
}

// TestSubmitBatchMemberCancel: canceling a queued gang member skips that
// cell; the rest of the gang still runs.
func TestSubmitBatchMemberCancel(t *testing.T) {
	var cells atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	ex := jobs.NewExecutor(jobs.Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			started <- struct{}{}
			<-release
			return fakeResult(spec), nil
		},
		BatchRunner: func(ctx context.Context, specs []core.Spec) ([]core.Result, error) {
			cells.Add(int64(len(specs)))
			results := make([]core.Result, len(specs))
			for i, spec := range specs {
				results[i] = fakeResult(spec)
			}
			return results, nil
		},
	})
	defer ex.Close()

	blocker, err := ex.Submit(testSpec(99), jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is pinned; the gang stays queued

	batch, err := ex.SubmitBatch([]core.Spec{testSpec(1), testSpec(2)}, jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Cancel(batch[0].ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	waitDone(t, ex, blocker.ID)

	snap := waitDone(t, ex, batch[1].ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("surviving member state = %s, err = %v", snap.State, snap.Err)
	}
	if got := cells.Load(); got != 1 {
		t.Errorf("batch runner saw %d cells, want 1 (canceled member must be skipped)", got)
	}
	canceled := waitDone(t, ex, batch[0].ID)
	if canceled.State != jobs.StateCanceled {
		t.Errorf("canceled member state = %s, want canceled", canceled.State)
	}
}
