package jobs

import (
	"math"
	"testing"
)

// TestEstWaitLocked pins the queue-wait estimator across policies and
// classes: per-class EWMAs (not one global average) price the backlog, FIFO
// estimates cover the whole shared queue, and WFQ estimates are tenant-local
// (another tenant's flood must not inflate a victim's estimate).
func TestEstWaitLocked(t *testing.T) {
	type backlog struct {
		tenant string
		class  Class
		n      int
	}
	cases := []struct {
		name      string
		policy    SchedPolicy
		workers   int
		sweepWait int // sweep jobs holding for a free slot
		slots     int
		avgByCls  [2]float64 // seconds: [interactive, sweep]
		backlog   []backlog
		tenant    string
		class     Class
		want      float64 // seconds
	}{
		{
			name:    "unseeded EWMA means no estimate",
			policy:  PolicyWFQ,
			workers: 4,
			backlog: []backlog{{"a", ClassInteractive, 10}},
			tenant:  "a",
			want:    0,
		},
		{
			name:     "fifo empty queue",
			policy:   PolicyFIFO,
			workers:  2,
			avgByCls: [2]float64{0.1, 1},
			tenant:   "a",
			want:     0,
		},
		{
			name:     "fifo homogeneous interactive backlog",
			policy:   PolicyFIFO,
			workers:  2,
			avgByCls: [2]float64{0.1, 0},
			backlog:  []backlog{{"a", ClassInteractive, 4}},
			tenant:   "b",
			class:    ClassInteractive,
			// 4 jobs x 0.1s over 2 workers + own 0.1 x (2-1)/2.
			want: 4*0.1/2 + 0.1*1/2,
		},
		{
			name:     "fifo prices sweep backlog at sweep cost",
			policy:   PolicyFIFO,
			workers:  4,
			avgByCls: [2]float64{0.01, 2},
			backlog: []backlog{
				{"a", ClassInteractive, 8},
				{"a", ClassSweep, 3},
			},
			tenant: "b",
			class:  ClassInteractive,
			// Backlog cost (8x0.01 + 3x2)/4 + own class residual.
			want: (8*0.01+3*2)/4 + 0.01*3/4,
		},
		{
			name:     "wfq victim with empty queue ignores the flood",
			policy:   PolicyWFQ,
			workers:  2,
			avgByCls: [2]float64{0.1, 0},
			backlog:  []backlog{{"flood", ClassInteractive, 1000}},
			tenant:   "victim",
			class:    ClassInteractive,
			want:     0,
		},
		{
			name:     "wfq own backlog at full pool when alone",
			policy:   PolicyWFQ,
			workers:  2,
			avgByCls: [2]float64{0.1, 0},
			backlog:  []backlog{{"a", ClassInteractive, 6}},
			tenant:   "a",
			class:    ClassInteractive,
			// Alone: share 1, rate = 2 workers.
			want: 6 * 0.1 / 2,
		},
		{
			name:     "wfq equal-weight contention halves the rate",
			policy:   PolicyWFQ,
			workers:  2,
			avgByCls: [2]float64{0.1, 0},
			backlog: []backlog{
				{"a", ClassInteractive, 6},
				{"b", ClassInteractive, 100},
			},
			tenant: "a",
			class:  ClassInteractive,
			// Share 0.5: 6 jobs x 0.1s / (0.5 x 2). b's depth is irrelevant.
			want: 6 * 0.1 / 1,
		},
		{
			name:     "wfq interactive arrival skips own sweep backlog",
			policy:   PolicyWFQ,
			workers:  4,
			avgByCls: [2]float64{0.1, 5},
			backlog: []backlog{
				{"a", ClassInteractive, 2},
				{"a", ClassSweep, 50},
			},
			tenant: "a",
			class:  ClassInteractive,
			// Only the 2 interactive jobs are ahead of an interactive arrival.
			want: 2 * 0.1 / 4,
		},
		{
			name:      "wfq sweep arrival counts deferred sweeps and slot cap",
			policy:    PolicyWFQ,
			workers:   8,
			sweepWait: 3,
			slots:     2,
			avgByCls:  [2]float64{0.1, 1},
			backlog:   []backlog{{"a", ClassSweep, 4}},
			tenant:    "a",
			class:     ClassSweep,
			// 4 queued + 3 deferred sweeps at sweep cost 1s, rate capped at
			// slots(2) x share(1), not the 8-worker pool.
			want: 7 * 1.0 / 2,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex := &Executor{cfg: Config{
				Workers:   tc.workers,
				QoS:       QoSConfig{Policy: tc.policy},
				Admission: AdmissionConfig{SweepSlots: tc.slots},
			}}
			ex.avgRunSecByClass = tc.avgByCls
			ex.avgRunSec = (tc.avgByCls[0] + tc.avgByCls[1]) / 2
			ex.sweepWait = make([]*Job, tc.sweepWait)
			if tc.policy == PolicyFIFO {
				ex.sched = newFIFOSched()
			} else {
				ex.sched = newWFQSched(ex.cfg.QoS, ex.estCostLocked)
			}
			var seq uint64
			for _, b := range tc.backlog {
				for i := 0; i < b.n; i++ {
					seq++
					ex.queuedByClass[classIdx(b.class)]++
					ex.sched.Push(&Job{tenant: b.tenant, class: b.class, seq: seq})
				}
			}
			got := ex.estWaitLocked(tc.tenant, tc.class).Seconds()
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("estWait = %.4fs, want %.4fs", got, tc.want)
			}
		})
	}
}

// TestPerClassEWMASeparation checks that completing jobs of one class does
// not perturb the other class's cost estimate once both are seeded.
func TestPerClassEWMASeparation(t *testing.T) {
	ex := &Executor{}
	ex.avgRunSecByClass = [2]float64{0.01, 10}
	if got := ex.estCostLocked(ClassInteractive); got != 0.01 {
		t.Fatalf("interactive cost = %v, want its own EWMA 0.01", got)
	}
	if got := ex.estCostLocked(ClassSweep); got != 10.0 {
		t.Fatalf("sweep cost = %v, want its own EWMA 10", got)
	}
	// One class unseeded: fall back to the other, then the 1ms floor.
	ex.avgRunSecByClass = [2]float64{0, 10}
	if got := ex.estCostLocked(ClassInteractive); got != 10.0 {
		t.Fatalf("unseeded interactive cost = %v, want sweep fallback 10", got)
	}
	ex.avgRunSecByClass = [2]float64{0, 0}
	ex.avgRunSec = 0
	if got := ex.estCostLocked(ClassSweep); got != 1e-3 {
		t.Fatalf("fully unseeded cost = %v, want 1ms floor", got)
	}
}
