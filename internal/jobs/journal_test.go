package jobs_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aaws/internal/jobs"
)

// openJournal opens a journal in dir with small segments and no fsync (the
// tests kill nothing harder than the process).
func openJournal(t *testing.T, dir string, segBytes int64) (*jobs.Journal, []jobs.Pending) {
	t.Helper()
	j, pending, err := jobs.OpenJournal(dir, jobs.JournalConfig{SegmentBytes: segBytes, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return j, pending
}

func pendingFor(seed uint64, id string, seq uint64) jobs.Pending {
	spec := testSpec(seed)
	hash, _ := jobs.SpecHash(jobs.Normalize(spec))
	return jobs.Pending{ID: id, Seq: seq, SpecHash: hash, Spec: jobs.Normalize(spec), Priority: 1}
}

// TestJournalRecordRoundTrip frames and re-parses a full record.
func TestJournalRecordRoundTrip(t *testing.T) {
	spec := jobs.Normalize(testSpec(3))
	rec := jobs.Record{
		Kind: "submit", ID: "abc-1", Seq: 1, SpecHash: "deadbeef", Spec: &spec,
		Priority: 2, Class: 1, TimeoutMs: 500, NoCache: true,
	}
	line, err := jobs.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatalf("record not newline-terminated: %q", line)
	}
	got, err := jobs.DecodeRecord(line[:len(line)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != rec.Kind || got.ID != rec.ID || got.Seq != rec.Seq ||
		got.Priority != rec.Priority || got.Class != rec.Class ||
		got.TimeoutMs != rec.TimeoutMs || !got.NoCache {
		t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
	}
	if got.Spec == nil || got.Spec.Seed != 3 {
		t.Fatalf("spec did not survive: %+v", got.Spec)
	}
}

// TestJournalDecodeRejectsCorruption flips one payload byte: the CRC must
// catch it.
func TestJournalDecodeRejectsCorruption(t *testing.T) {
	line, err := jobs.EncodeRecord(jobs.Record{Kind: "done", ID: "x-1", ResultHash: "beef"})
	if err != nil {
		t.Fatal(err)
	}
	line = line[:len(line)-1]
	for _, mutate := range [][]byte{
		append(append([]byte{}, line[:len(line)/2]...), line[len(line)/2]^0x01),
		line[:9],                               // framing only, empty payload
		[]byte("zzzzzzzz " + string(line[9:])), // non-hex CRC
		{},
	} {
		if _, err := jobs.DecodeRecord(mutate); err == nil {
			t.Fatalf("corrupt line decoded cleanly: %q", mutate)
		}
	}
}

// TestJournalReplay covers the full lifecycle: jobs that reached a terminal
// record are not replayed; queued and running ones are, with attempts and
// progress folded in, in submission order.
func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	j, pending := openJournal(t, dir, 1<<20)
	if len(pending) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(pending))
	}
	for i, p := range []jobs.Pending{
		pendingFor(1, "job-1", 1), // will finish
		pendingFor(2, "job-2", 2), // will be running at the "crash"
		pendingFor(3, "job-3", 3), // still queued
		pendingFor(4, "job-4", 4), // canceled
	} {
		if err := j.Submit(p); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	j.Start("job-1", 1)
	j.Done("job-1", "cafe")
	j.Start("job-2", 2)
	j.Progress("job-2", 12345)
	j.Cancel("job-4")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, pending := openJournal(t, dir, 1<<20)
	defer j2.Close()
	if len(pending) != 2 {
		t.Fatalf("replayed %d jobs, want 2: %+v", len(pending), pending)
	}
	if pending[0].ID != "job-2" || pending[1].ID != "job-3" {
		t.Fatalf("wrong replay order: %s, %s", pending[0].ID, pending[1].ID)
	}
	if pending[0].Attempts != 2 || pending[0].Events != 12345 {
		t.Fatalf("job-2 state not folded in: %+v", pending[0])
	}
	if pending[0].Spec.Seed != 2 || pending[0].Priority != 1 {
		t.Fatalf("job-2 spec/options lost: %+v", pending[0])
	}
	if got := j2.MaxSeq(); got != 4 {
		t.Fatalf("MaxSeq = %d, want 4 (terminal jobs still reserve their IDs)", got)
	}
}

// TestJournalTornTail appends garbage and a half-written record after valid
// data: replay must keep everything before the tear and never fail.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir, 1<<20)
	if err := j.Submit(pendingFor(1, "ok-1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(pendingFor(2, "ok-2", 2)); err != nil {
		t.Fatal(err)
	}
	j.Done("ok-2", "beef")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Find the active segment and tear its tail: a valid line prefix with
	// no newline, as a crash mid-write leaves behind.
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (err %v)", segs, err)
	}
	valid, err := jobs.EncodeRecord(jobs.Record{Kind: "submit", ID: "torn", Seq: 9})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(valid[:len(valid)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, pending := openJournal(t, dir, 1<<20)
	defer j2.Close()
	if len(pending) != 1 || pending[0].ID != "ok-1" {
		t.Fatalf("torn-tail replay: %+v, want just ok-1", pending)
	}
	if m := j2.Metrics(); m.CorruptSkipped == 0 {
		t.Fatal("torn tail not counted in CorruptSkipped")
	}
}

// TestJournalRotationCompacts drives the journal past its segment bound many
// times: old segments must be deleted, and the compacted state must still
// replay exactly the open jobs.
func TestJournalRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir, 512) // tiny segments force rotation
	// One long-lived open job that every compaction must carry forward.
	if err := j.Submit(pendingFor(99, "sticky", 1)); err != nil {
		t.Fatal(err)
	}
	for i := uint64(2); i < 40; i++ {
		p := pendingFor(i, fmt.Sprintf("ephemeral-%d", i), i)
		if err := j.Submit(p); err != nil {
			t.Fatal(err)
		}
		j.Done(p.ID, "beef")
	}
	m := j.Metrics()
	if m.Rotations == 0 {
		t.Fatal("no rotations despite 512-byte segments")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments: %v", len(segs), segs)
	}

	j2, pending := openJournal(t, dir, 512)
	defer j2.Close()
	if len(pending) != 1 || pending[0].ID != "sticky" {
		t.Fatalf("compacted replay: %+v, want just sticky", pending)
	}
}

// FuzzJournalSegmentReplay writes arbitrary bytes as an on-disk journal
// segment and opens it: whatever a crash (or an adversary) left behind,
// OpenJournal must never panic, must skip what it cannot parse, and every
// replayed job must be well-formed. This is the coordinator's recovery
// surface — a corrupt sweep journal must degrade to fewer replayed tasks,
// never to a wedged restart.
func FuzzJournalSegmentReplay(f *testing.F) {
	var valid []byte
	for _, rec := range []jobs.Record{
		{Kind: "submit", ID: "s-1", Seq: 1},
		{Kind: "start", ID: "s-1", Attempt: 1},
		{Kind: "done", ID: "s-1", ResultHash: "beef"},
		{Kind: "submit", ID: "s-2", Seq: 2},
	} {
		line, err := jobs.EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, line...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // torn tail
	f.Add([]byte(""))
	f.Add([]byte("not a journal at all\n\x00\xff\xfe"))
	f.Add(append([]byte("00000000 {}\n"), valid...))
	f.Fuzz(func(t *testing.T, segment []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal-00000001.wal"), segment, 0o644); err != nil {
			t.Fatal(err)
		}
		j, pending, err := jobs.OpenJournal(dir, jobs.JournalConfig{NoSync: true})
		if err != nil {
			return // refusing the directory is fine; panicking is not
		}
		defer j.Close()
		for _, p := range pending {
			if p.ID == "" {
				t.Fatalf("replayed a job with no ID: %+v", p)
			}
		}
		// The opened journal must still accept writes after replaying trash.
		if err := j.Submit(jobs.Pending{ID: "post-replay", Seq: j.MaxSeq() + 1}); err != nil {
			t.Fatalf("journal unusable after corrupt replay: %v", err)
		}
	})
}

// FuzzJournalDecode throws arbitrary bytes at the record decoder: it must
// never panic, and every accepted record must re-encode and decode again
// (the decoder defines the format).
func FuzzJournalDecode(f *testing.F) {
	seed, err := jobs.EncodeRecord(jobs.Record{Kind: "submit", ID: "s-1", Seq: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed[:len(seed)-1])
	f.Add([]byte(""))
	f.Add([]byte("00000000 {}"))
	f.Add([]byte("zzzzzzzz {\"kind\":\"done\",\"id\":\"x\"}"))
	f.Add([]byte(strings.Repeat("a", 9)))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := jobs.DecodeRecord(line)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if rec.Kind == "" || rec.ID == "" {
			t.Fatalf("accepted record missing kind/id: %+v", rec)
		}
		again, err := jobs.EncodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		if _, err := jobs.DecodeRecord(again[:len(again)-1]); err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
	})
}
