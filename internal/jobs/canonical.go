// Package jobs turns the one-shot simulation drivers into a service: a Job
// is a canonically-serialized, validated core.Spec whose SHA-256 hash keys a
// content-addressed result cache, and an Executor runs jobs on a bounded
// worker pool with priorities, deadlines, cancellation, panic isolation and
// retry. The HTTP layer (Server) exposes the executor as a JSON API; the
// sweep and chaos commands route their matrices through the same executor so
// the service is the single execution path.
package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"aaws/internal/core"
)

// CanonicalJSON encodes v as canonical JSON: object keys sorted, no
// insignificant whitespace, no HTML escaping, and numbers normalized
// (integers as-is, floats in shortest round-trip form via strconv 'g'/-1).
// Two equal values always canonicalize to identical bytes, and — because
// shortest-form floats round-trip exactly — decoding and re-canonicalizing
// is the identity. This is what makes result bytes content-addressable.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, tree); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeCanonical emits one decoded JSON value in canonical form.
func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		return writeCanonicalNumber(buf, x)
	case string:
		return writeCanonicalString(buf, x)
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonicalString(buf, k); err != nil {
				return err
			}
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("jobs: cannot canonicalize %T", v)
	}
	return nil
}

// writeCanonicalNumber normalizes a number token: integer-form tokens pass
// through verbatim; anything with a fraction or exponent is re-formatted as
// the shortest string that parses back to the same float64.
func writeCanonicalNumber(buf *bytes.Buffer, n json.Number) error {
	s := n.String()
	if !bytes.ContainsAny([]byte(s), ".eE") {
		buf.WriteString(s)
		return nil
	}
	f, err := n.Float64()
	if err != nil {
		return fmt.Errorf("jobs: bad number %q: %w", s, err)
	}
	buf.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	return nil
}

// writeCanonicalString encodes s without HTML escaping (encoding/json's
// default escaping of <, > and & is lossless but ugly in stored artifacts).
func writeCanonicalString(buf *bytes.Buffer, s string) error {
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(s); err != nil {
		return err
	}
	// Encode appends a newline; canonical form has none.
	b := buf.Bytes()
	if len(b) > 0 && b[len(b)-1] == '\n' {
		buf.Truncate(len(b) - 1)
	}
	return nil
}

// Normalize fills the spec defaults that core.Run would fill (zero Scale
// means 1.0) so that semantically identical submissions hash identically.
func Normalize(spec core.Spec) core.Spec {
	if spec.Scale == 0 {
		spec.Scale = 1.0
	}
	return spec
}

// SpecHash returns the hex SHA-256 of the normalized spec's canonical JSON
// encoding: the content address of the simulation's result. Every field of
// the spec participates — two specs share a hash exactly when PR 1's
// determinism guarantees they produce bit-identical reports.
func SpecHash(spec core.Spec) (string, error) {
	b, err := CanonicalJSON(Normalize(spec))
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ResultHash returns the hex SHA-256 of canonical result bytes, used as an
// ETag by the HTTP layer and in golden spec-hash → result-hash tests.
func ResultHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
