package jobs_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aaws/internal/core"
	"aaws/internal/jobs"
)

// TestRateLimiterBucket exercises refill, burst capping, and the wait hint.
func TestRateLimiterBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := jobs.NewRateLimiterClock(2, 3, clk.now) // 2/sec, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c1"); !ok {
			t.Fatalf("burst submission %d rejected", i)
		}
	}
	ok, wait := l.Allow("c1")
	if ok {
		t.Fatal("submission past the burst admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait hint %s, want (0, 500ms]~", wait)
	}
	// A different client has its own bucket.
	if ok, _ := l.Allow("c2"); !ok {
		t.Fatal("independent client rejected")
	}
	// Half a second refills one token at 2/sec.
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("c1"); !ok {
		t.Fatal("refilled token rejected")
	}
	if ok, _ := l.Allow("c1"); ok {
		t.Fatal("second token appeared from a single refill")
	}
	s := l.Stats()
	if s.Limited != 2 || s.Clients != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestRateLimiterBoundsClients floods the limiter with unique client keys:
// the bucket map must stay bounded (idle buckets evicted), so spoofed
// identities cannot grow memory without limit.
func TestRateLimiterBoundsClients(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := jobs.NewRateLimiterClock(1000, 1, clk.now)
	for i := 0; i < 10000; i++ {
		clk.advance(time.Millisecond) // keep earlier buckets refilled (idle)
		l.Allow(fmt.Sprintf("spoof-%d", i))
	}
	if s := l.Stats(); s.Clients > 8192 {
		t.Fatalf("bucket map grew past the bound: %d clients", s.Clients)
	}
}

// TestRateLimiterUnlimited checks that rate <= 0 disables limiting.
func TestRateLimiterUnlimited(t *testing.T) {
	l := jobs.NewRateLimiter(0, 1)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("x"); !ok {
			t.Fatal("unlimited limiter rejected a call")
		}
	}
	var nilL *jobs.RateLimiter
	if ok, _ := nilL.Allow("x"); !ok {
		t.Fatal("nil limiter rejected a call")
	}
}

// blockingExecutor builds an executor whose runner holds every job until
// release is closed, with the given admission config.
func blockingExecutor(t *testing.T, cfg jobs.Config) (*jobs.Executor, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	cfg.Runner = func(ctx context.Context, spec core.Spec) (core.Result, error) {
		select {
		case <-release:
			return fakeResult(spec), nil
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	ex := jobs.NewExecutor(cfg)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		ex.Close()
	})
	return ex, release
}

// TestPerPriorityDepth fills one priority level to its cap: the next
// submission at that level is rejected while other levels still admit.
func TestPerPriorityDepth(t *testing.T) {
	ex, _ := blockingExecutor(t, jobs.Config{
		Workers:    1,
		QueueDepth: 100,
		Admission:  jobs.AdmissionConfig{PerPriorityDepth: 2},
	})
	// First job occupies the worker; the queue is empty again.
	if _, err := ex.Submit(testSpec(1), jobs.SubmitOptions{Priority: 5}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, ex, 1)
	for i := uint64(2); i <= 3; i++ {
		if _, err := ex.Submit(testSpec(i), jobs.SubmitOptions{Priority: 5}); err != nil {
			t.Fatalf("queued job %d: %v", i, err)
		}
	}
	_, err := ex.Submit(testSpec(4), jobs.SubmitOptions{Priority: 5})
	if !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("priority level over cap admitted: %v", err)
	}
	if ra, ok := jobs.RetryAfterOf(err); !ok || ra <= 0 {
		t.Fatalf("per-priority rejection carries no retry hint: %v", err)
	}
	// Another priority level is unaffected.
	if _, err := ex.Submit(testSpec(5), jobs.SubmitOptions{Priority: 6}); err != nil {
		t.Fatalf("other priority level rejected: %v", err)
	}
}

// waitRunning blocks until the executor reports n running jobs.
func waitRunning(t *testing.T, ex *jobs.Executor, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ex.Metrics().Running < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d running jobs (%d)", n, ex.Metrics().Running)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueDeadlineShedding makes queue waits long and deadlines short: once
// the executor has latency data, doomed submissions must be shed with
// ErrOverloaded and a Retry-After hint instead of queued.
func TestQueueDeadlineShedding(t *testing.T) {
	slow := 50 * time.Millisecond
	ex := jobs.NewExecutor(jobs.Config{
		Workers:    1,
		QueueDepth: 100,
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			time.Sleep(slow)
			return fakeResult(spec), nil
		},
	})
	defer ex.Close()
	// Seed the latency EWMA with one completed job.
	job, err := ex.Submit(testSpec(1), jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ex, job.ID)
	if m := ex.Metrics(); m.AvgRunMs <= 0 {
		t.Fatalf("EWMA not seeded: %+v", m)
	}
	// Pile up enough queued work that the estimated wait dwarfs a 1ms
	// deadline. Jobs without deadlines are untouched.
	for i := uint64(2); i < 12; i++ {
		if _, err := ex.Submit(testSpec(i), jobs.SubmitOptions{}); err != nil {
			t.Fatalf("backlog job: %v", err)
		}
	}
	_, err = ex.Submit(testSpec(100), jobs.SubmitOptions{Timeout: time.Millisecond})
	if !errors.Is(err, jobs.ErrOverloaded) {
		t.Fatalf("doomed submission admitted: %v", err)
	}
	ra, ok := jobs.RetryAfterOf(err)
	if !ok || ra <= 0 {
		t.Fatalf("shed rejection carries no retry hint: %v", err)
	}
	if m := ex.Metrics(); m.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", m.Shed)
	}
}

// TestMaxWaitSheds covers the deadline-free variant: AdmissionConfig.MaxWait
// sheds even jobs that carry no timeout of their own.
func TestMaxWaitSheds(t *testing.T) {
	ex := jobs.NewExecutor(jobs.Config{
		Workers:    1,
		QueueDepth: 100,
		Admission:  jobs.AdmissionConfig{MaxWait: time.Millisecond},
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			time.Sleep(30 * time.Millisecond)
			return fakeResult(spec), nil
		},
	})
	defer ex.Close()
	job, err := ex.Submit(testSpec(1), jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ex, job.ID)
	for i := uint64(2); i < 10; i++ {
		_, err = ex.Submit(testSpec(i), jobs.SubmitOptions{})
		if errors.Is(err, jobs.ErrOverloaded) {
			return // shed kicked in once the queue built up
		}
		if err != nil {
			t.Fatalf("unexpected rejection: %v", err)
		}
	}
	t.Fatal("MaxWait never shed despite 1ms ceiling and 30ms jobs")
}

// TestSweepClassConcurrencyLimit floods a 4-worker pool with sweep-class
// jobs capped at 2 slots: sweep concurrency must never exceed the cap, and
// an interactive job submitted mid-flood must start promptly on a free
// worker.
func TestSweepClassConcurrencyLimit(t *testing.T) {
	var mu sync.Mutex
	running, maxRunning := 0, 0 // sweep-class occupancy observed by the runner
	interactiveStarted := make(chan struct{}, 1)
	release := make(chan struct{})
	ex := jobs.NewExecutor(jobs.Config{
		Workers:    4,
		QueueDepth: 100,
		Admission:  jobs.AdmissionConfig{SweepSlots: 2},
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			if spec.Seed == 999 { // the interactive probe
				interactiveStarted <- struct{}{}
				return fakeResult(spec), nil
			}
			mu.Lock()
			running++
			if running > maxRunning {
				maxRunning = running
			}
			mu.Unlock()
			<-release
			mu.Lock()
			running--
			mu.Unlock()
			return fakeResult(spec), nil
		},
	})
	defer ex.Close()

	var ids []string
	for i := uint64(1); i <= 8; i++ {
		job, err := ex.Submit(testSpec(i), jobs.SubmitOptions{Class: jobs.ClassSweep})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	// Give the pool time to (incorrectly) oversubscribe if it were going to.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m := ex.Metrics()
		if m.SweepRunning == 2 && m.SweepDeferred+m.QueueDepth == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep occupancy never settled: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	// Interactive work must cut through while both sweep slots are busy.
	if _, err := ex.Submit(testSpec(999), jobs.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-interactiveStarted:
	case <-time.After(2 * time.Second):
		t.Fatal("interactive job starved behind sweep flood")
	}

	close(release)
	for _, id := range ids {
		if snap := waitDone(t, ex, id); snap.State != jobs.StateDone {
			t.Fatalf("sweep job %s: %s (%v)", id, snap.State, snap.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if maxRunning > 2 {
		t.Fatalf("sweep concurrency hit %d, cap is 2", maxRunning)
	}
}

// TestRetryBackoffDeterministic verifies the executor retries transient
// failures with growing (but bounded, jittered) waits and that the total
// latency reflects actual backoff rather than hot-looping.
func TestRetryBackoffDeterministic(t *testing.T) {
	var attempts int
	var mu sync.Mutex
	var stamps []time.Time
	ex := jobs.NewExecutor(jobs.Config{
		Workers:        1,
		MaxRetries:     2,
		RetryBaseDelay: 20 * time.Millisecond,
		RetryMaxDelay:  100 * time.Millisecond,
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			mu.Lock()
			attempts++
			stamps = append(stamps, time.Now())
			n := attempts
			mu.Unlock()
			if n < 3 {
				return core.Result{}, fmt.Errorf("flaky substrate: %w", jobs.ErrTransient)
			}
			return fakeResult(spec), nil
		},
	})
	defer ex.Close()
	job, err := ex.Submit(testSpec(1), jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, ex, job.ID)
	if snap.State != jobs.StateDone || snap.Attempts != 3 {
		t.Fatalf("state %s, attempts %d", snap.State, snap.Attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	// Jitter keeps delays in [0.5, 1.0)× the nominal 20ms/40ms steps.
	gap1, gap2 := stamps[1].Sub(stamps[0]), stamps[2].Sub(stamps[1])
	if gap1 < 10*time.Millisecond {
		t.Fatalf("first retry fired after %s, want >= 10ms", gap1)
	}
	if gap2 < 20*time.Millisecond {
		t.Fatalf("second retry fired after %s, want >= 20ms", gap2)
	}
	if m := ex.Metrics(); m.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", m.Retries)
	}
}

// TestRetryBackoffHonorsCancellation cancels a job while it waits out a
// retry backoff: the wait must abort promptly instead of sleeping it out.
func TestRetryBackoffHonorsCancellation(t *testing.T) {
	ran := make(chan struct{}, 8)
	ex := jobs.NewExecutor(jobs.Config{
		Workers:        1,
		MaxRetries:     5,
		RetryBaseDelay: 10 * time.Second, // far longer than the test
		Runner: func(ctx context.Context, spec core.Spec) (core.Result, error) {
			ran <- struct{}{}
			return core.Result{}, fmt.Errorf("flaky: %w", jobs.ErrTransient)
		},
	})
	defer ex.Close()
	job, err := ex.Submit(testSpec(1), jobs.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-ran // first attempt failed; the worker is now in backoff
	start := time.Now()
	if _, err := ex.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, ex, job.ID)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %s to cut the backoff", elapsed)
	}
	if snap.State != jobs.StateCanceled {
		t.Fatalf("state %s, want canceled", snap.State)
	}
}
