package jobs_test

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"aaws/internal/jobs"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerLifecycle walks the full closed → open → half-open → closed
// cycle, including a failed probe that re-opens the circuit.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := jobs.NewBreaker(jobs.BreakerConfig{Threshold: 3, Cooldown: time.Second, Clock: clk.now})

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected a call")
		}
		b.Failure()
	}
	if b.State() != jobs.BreakerClosed {
		t.Fatalf("tripped below threshold: %s", b.State())
	}
	b.Failure() // third consecutive failure
	if b.State() != jobs.BreakerOpen {
		t.Fatalf("did not trip at threshold: %s", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted during half-open")
	}
	b.Failure() // probe failed: straight back to open
	if b.State() != jobs.BreakerOpen {
		t.Fatalf("failed probe did not re-open: %s", b.State())
	}

	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != jobs.BreakerClosed {
		t.Fatalf("successful probe did not close: %s", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call after healing")
	}
	if s := b.Stats(); s.Trips != 2 || s.ShortCuts == 0 {
		t.Fatalf("stats: %+v, want 2 trips and some shortcuts", s)
	}
}

// TestBreakerSuccessResetsStreak interleaves failures with successes: the
// consecutive-failure counter must reset, never trip.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := jobs.NewBreaker(jobs.BreakerConfig{Threshold: 2})
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Success()
	}
	if b.State() != jobs.BreakerClosed {
		t.Fatalf("interleaved failures tripped the breaker: %s", b.State())
	}
}

// failingFS injects disk faults: after `failAfter` calls every operation
// errors until healed.
type failingFS struct {
	mu     sync.Mutex
	broken bool
	calls  int
}

func (f *failingFS) fail() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.broken {
		return errors.New("injected disk fault")
	}
	return nil
}

func (f *failingFS) setBroken(v bool) {
	f.mu.Lock()
	f.broken = v
	f.mu.Unlock()
}

func (f *failingFS) ReadFile(name string) ([]byte, error) {
	if err := f.fail(); err != nil {
		return nil, err
	}
	return os.ReadFile(name)
}

func (f *failingFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if err := f.fail(); err != nil {
		return err
	}
	return os.WriteFile(name, data, perm)
}

func (f *failingFS) Rename(oldpath, newpath string) error {
	if err := f.fail(); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

// TestCacheBreakerDegradesToMemory is the disk-fault acceptance test: a
// failing disk trips the cache's breaker, the cache keeps serving from
// memory without touching the disk, and a healed disk closes the circuit
// again via a half-open probe.
func TestCacheBreakerDegradesToMemory(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	fs := &failingFS{}
	br := jobs.NewBreaker(jobs.BreakerConfig{Threshold: 3, Cooldown: time.Second, Clock: clk.now})
	cache, err := jobs.NewCacheWith(64, t.TempDir(), fs, br)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put("healthy", []byte(`{"a":1}`))
	if _, ok := cache.Get("healthy"); !ok {
		t.Fatal("baseline entry missing")
	}

	fs.setBroken(true)
	// Memory hits must keep working throughout the outage.
	if _, ok := cache.Get("healthy"); !ok {
		t.Fatal("memory hit lost during disk outage")
	}
	// Misses hit the broken disk until the breaker trips.
	for i := 0; i < 3; i++ {
		if _, ok := cache.Get(fmt.Sprintf("missing-%d", i)); ok {
			t.Fatal("phantom hit")
		}
	}
	if br.State() != jobs.BreakerOpen {
		t.Fatalf("3 disk faults did not trip the breaker: %s", br.State())
	}
	stats := cache.Stats()
	if stats.DiskErrors != 3 {
		t.Fatalf("DiskErrors = %d, want 3", stats.DiskErrors)
	}
	// With the breaker open, further traffic is memory-only: the failing
	// fs must see no new calls.
	fs.mu.Lock()
	before := fs.calls
	fs.mu.Unlock()
	cache.Put("during-outage", []byte(`{"b":2}`))
	cache.Get("missing-again")
	if _, ok := cache.Get("during-outage"); !ok {
		t.Fatal("memory put lost during outage")
	}
	fs.mu.Lock()
	after := fs.calls
	fs.mu.Unlock()
	if after != before {
		t.Fatalf("open breaker still touched the disk (%d calls)", after-before)
	}

	// Heal the disk, advance past the cooldown: the next disk access is
	// the half-open probe and closes the circuit.
	fs.setBroken(false)
	clk.advance(1100 * time.Millisecond)
	cache.Put("healed", []byte(`{"c":3}`))
	if br.State() != jobs.BreakerClosed {
		t.Fatalf("healed probe did not close the breaker: %s", br.State())
	}
	if s := cache.Stats(); s.Breaker.Trips != 1 {
		t.Fatalf("breaker trips = %d, want 1", s.Breaker.Trips)
	}
}
