package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"aaws/internal/core"
	"aaws/internal/fault"
	"aaws/internal/kernels"
	"aaws/internal/trace"
	"aaws/internal/wsrt"
)

// Server exposes an Executor over HTTP JSON:
//
//	POST   /v1/jobs            submit one job
//	GET    /v1/jobs/{id}       job status (+ inline report when done)
//	GET    /v1/jobs/{id}/report     raw canonical result bytes (ETag = result hash)
//	GET    /v1/jobs/{id}/trace.svg  activity/DVFS profile (WithTrace jobs)
//	GET    /v1/jobs/{id}/trace.csv  profile samples as CSV
//	DELETE /v1/jobs/{id}       cancel
//	POST   /v1/sweeps          submit a kernel × variant × system matrix
//	GET    /metrics            Prometheus-style counters
//	GET    /healthz            200 ok / 503 draining
type Server struct {
	ex  *Executor
	mux *http.ServeMux
}

// NewServer wraps ex in the HTTP API.
func NewServer(ex *Executor) *Server {
	s := &Server{ex: ex, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.getReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace.svg", s.getTraceSVG)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace.csv", s.getTraceCSV)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.submitSweep)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// JobRequest is the JSON submission body. Zero values take the evaluation
// defaults (seed 42, scale 1.0, 4B4L, base+psm).
type JobRequest struct {
	Kernel  string  `json:"kernel"`
	System  string  `json:"system,omitempty"`
	Variant string  `json:"variant,omitempty"`
	Seed    *uint64 `json:"seed,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Check   *bool   `json:"check,omitempty"`
	NBig    int     `json:"nbig,omitempty"`
	NLit    int     `json:"nlit,omitempty"`

	WithTrace      bool          `json:"with_trace,omitempty"`
	MemStall       bool          `json:"mem_stall,omitempty"`
	AdaptiveDVFS   bool          `json:"adaptive_dvfs,omitempty"`
	CacheModel     bool          `json:"cache_model,omitempty"`
	DisableBiasing bool          `json:"disable_biasing,omitempty"`
	MaxEvents      uint64        `json:"max_events,omitempty"`
	Faults         *fault.Config `json:"faults,omitempty"`

	Priority  int   `json:"priority,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"no_cache,omitempty"`
}

// ToSpec resolves the request into a validated core.Spec.
func (req JobRequest) ToSpec() (core.Spec, error) {
	sysName := req.System
	if sysName == "" {
		sysName = "4B4L"
	}
	sys, ok := core.ParseSystem(sysName)
	if !ok && req.NBig == 0 {
		return core.Spec{}, fmt.Errorf("unknown system %q", req.System)
	}
	variant := req.Variant
	if variant == "" {
		variant = "base+psm"
	}
	v, ok := wsrt.ParseVariant(variant)
	if !ok {
		return core.Spec{}, fmt.Errorf("unknown variant %q", req.Variant)
	}
	spec := core.Spec{
		Kernel:         req.Kernel,
		System:         sys,
		Variant:        v,
		Seed:           42,
		Scale:          req.Scale,
		WithTrace:      req.WithTrace,
		MemStall:       req.MemStall,
		Check:          true,
		AdaptiveDVFS:   req.AdaptiveDVFS,
		CacheModel:     req.CacheModel,
		DisableBiasing: req.DisableBiasing,
		NBig:           req.NBig,
		NLit:           req.NLit,
		MaxEvents:      req.MaxEvents,
		Faults:         req.Faults,
	}
	if req.Seed != nil {
		spec.Seed = *req.Seed
	}
	if req.Check != nil {
		spec.Check = *req.Check
	}
	return Normalize(spec), nil
}

func (req JobRequest) submitOptions() SubmitOptions {
	return SubmitOptions{
		Priority: req.Priority,
		Timeout:  time.Duration(req.TimeoutMs) * time.Millisecond,
		NoCache:  req.NoCache,
	}
}

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID         string          `json:"id"`
	SpecHash   string          `json:"spec_hash"`
	State      string          `json:"state"`
	Kernel     string          `json:"kernel"`
	System     string          `json:"system"`
	Variant    string          `json:"variant"`
	Seed       uint64          `json:"seed"`
	CacheHit   bool            `json:"cache_hit"`
	Coalesced  bool            `json:"coalesced"`
	Attempts   int             `json:"attempts,omitempty"`
	Error      string          `json:"error,omitempty"`
	ElapsedMs  float64         `json:"elapsed_ms,omitempty"`
	ResultHash string          `json:"result_hash,omitempty"`
	Report     json.RawMessage `json:"report,omitempty"`
}

func statusOf(s Snapshot) JobStatus {
	js := JobStatus{
		ID:        s.ID,
		SpecHash:  s.SpecHash,
		State:     s.State.String(),
		Kernel:    s.Spec.Kernel,
		System:    s.Spec.System.String(),
		Variant:   s.Spec.Variant.String(),
		Seed:      s.Spec.Seed,
		CacheHit:  s.CacheHit,
		Coalesced: s.Coalesced,
		Attempts:  s.Attempts,
	}
	if s.Err != nil {
		js.Error = s.Err.Error()
	}
	if d := s.Elapsed(); d > 0 {
		js.ElapsedMs = float64(d) / float64(time.Millisecond)
	}
	if s.State == StateDone {
		js.ResultHash = ResultHash(s.Data)
		js.Report = json.RawMessage(s.Data)
	}
	return js
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	spec, err := req.ToSpec()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.ex.Submit(spec, req.submitOptions())
	if err != nil {
		httpError(w, submitStatus(err), err)
		return
	}
	snap, _ := s.ex.Get(job.ID)
	code := http.StatusAccepted
	if snap.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, statusOf(snap))
}

// SweepRequest submits the cross product kernels × systems × variants ×
// seeds as one batch. Empty lists default to all kernels / 4B4L / all five
// variants / seed 42.
type SweepRequest struct {
	Kernels  []string `json:"kernels,omitempty"`
	Systems  []string `json:"systems,omitempty"`
	Variants []string `json:"variants,omitempty"`
	Seeds    []uint64 `json:"seeds,omitempty"`
	Scale    float64  `json:"scale,omitempty"`
	Check    bool     `json:"check,omitempty"`

	Priority  int   `json:"priority,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"no_cache,omitempty"`
}

// SweepResponse lists the submitted jobs in matrix order.
type SweepResponse struct {
	Count int      `json:"count"`
	IDs   []string `json:"ids"`
}

func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Kernels) == 0 {
		req.Kernels = kernels.Names()
	}
	if len(req.Systems) == 0 {
		req.Systems = []string{"4B4L"}
	}
	if len(req.Variants) == 0 {
		for _, v := range wsrt.Variants {
			req.Variants = append(req.Variants, v.String())
		}
	}
	if len(req.Seeds) == 0 {
		req.Seeds = []uint64{42}
	}
	opts := SubmitOptions{
		Priority: req.Priority,
		Timeout:  time.Duration(req.TimeoutMs) * time.Millisecond,
		NoCache:  req.NoCache,
	}
	var resp SweepResponse
	for _, kname := range req.Kernels {
		for _, sysName := range req.Systems {
			sys, ok := core.ParseSystem(sysName)
			if !ok {
				httpError(w, http.StatusBadRequest, fmt.Errorf("unknown system %q", sysName))
				return
			}
			for _, vname := range req.Variants {
				v, ok := wsrt.ParseVariant(vname)
				if !ok {
					httpError(w, http.StatusBadRequest, fmt.Errorf("unknown variant %q", vname))
					return
				}
				for _, seed := range req.Seeds {
					spec := core.Spec{
						Kernel: kname, System: sys, Variant: v,
						Seed: seed, Scale: req.Scale, Check: req.Check,
					}
					job, err := s.ex.Submit(spec, opts)
					if err != nil {
						httpError(w, submitStatus(err), fmt.Errorf("submitting %s/%s/%s: %w", kname, sysName, vname, err))
						return
					}
					resp.IDs = append(resp.IDs, job.ID)
				}
			}
		}
	}
	resp.Count = len(resp.IDs)
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	snap, err := s.ex.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(snap))
}

func (s *Server) getReport(w http.ResponseWriter, r *http.Request) {
	snap, err := s.ex.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if snap.State != StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s, report not available", snap.State))
		return
	}
	etag := `"` + ResultHash(snap.Data) + `"`
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap.Data)
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	state, err := s.ex.Cancel(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": state.String()})
}

// traceRecorder fetches a job's recorder, writing the appropriate HTTP
// error when unavailable.
func (s *Server) traceRecorder(w http.ResponseWriter, r *http.Request) (*trace.Recorder, Snapshot, bool) {
	rec, snap, err := s.ex.TraceRecorder(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return nil, Snapshot{}, false
	}
	if !snap.State.Terminal() {
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s, trace not available yet", snap.State))
		return nil, Snapshot{}, false
	}
	if rec == nil {
		httpError(w, http.StatusNotFound, errors.New(
			"no trace: submit with with_trace=true and no_cache=true (cached/coalesced results carry no recorder)"))
		return nil, Snapshot{}, false
	}
	return rec, snap, true
}

func (s *Server) getTraceSVG(w http.ResponseWriter, r *http.Request) {
	rec, snap, ok := s.traceRecorder(w, r)
	if !ok {
		return
	}
	nBig, nLit := snap.Spec.System.Counts()
	if snap.Spec.NBig > 0 {
		nBig, nLit = snap.Spec.NBig, snap.Spec.NLit
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	if err := rec.WriteSVG(w, trace.CoreNames(nBig, nLit), 1600); err != nil {
		// Headers are gone; all we can do is stop streaming.
		return
	}
}

func (s *Server) getTraceCSV(w http.ResponseWriter, r *http.Request) {
	rec, snap, ok := s.traceRecorder(w, r)
	if !ok {
		return
	}
	nBig, nLit := snap.Spec.System.Counts()
	if snap.Spec.NBig > 0 {
		nBig, nLit = snap.Spec.NBig, snap.Spec.NLit
	}
	w.Header().Set("Content-Type", "text/csv")
	_ = rec.WriteCSV(w, trace.CoreNames(nBig, nLit), 200)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	m := s.ex.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("aaws_jobs_submitted_total %d\n", m.Submitted)
	p("aaws_jobs_completed_total %d\n", m.Completed)
	p("aaws_jobs_failed_total %d\n", m.Failed)
	p("aaws_jobs_canceled_total %d\n", m.Canceled)
	p("aaws_jobs_retries_total %d\n", m.Retries)
	p("aaws_jobs_queue_depth %d\n", m.QueueDepth)
	p("aaws_jobs_running %d\n", m.Running)
	p("aaws_jobs_workers %d\n", m.Workers)
	p("aaws_cache_hits_total %d\n", m.CacheHits)
	p("aaws_cache_coalesced_total %d\n", m.Coalesced)
	p("aaws_cache_misses_total %d\n", m.Cache.Misses)
	p("aaws_cache_evictions_total %d\n", m.Cache.Evictions)
	p("aaws_cache_disk_hits_total %d\n", m.Cache.DiskHits)
	p("aaws_cache_entries %d\n", m.Cache.Entries)
	hitRate := 0.0
	if m.Submitted > 0 {
		hitRate = float64(m.CacheHits+m.Coalesced) / float64(m.Submitted)
	}
	p("aaws_cache_hit_ratio %g\n", hitRate)
	names := make([]string, 0, len(m.PerKernel))
	for k := range m.PerKernel {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		km := m.PerKernel[k]
		p("aaws_kernel_runs_total{kernel=%q} %d\n", k, km.Runs)
		p("aaws_kernel_latency_seconds_sum{kernel=%q} %g\n", k, km.TotalSec)
		p("aaws_kernel_latency_seconds_max{kernel=%q} %g\n", k, km.MaxSec)
	}
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.ex.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
