package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"aaws/internal/core"
	"aaws/internal/fault"
	"aaws/internal/kernels"
	"aaws/internal/obs"
	"aaws/internal/trace"
	"aaws/internal/wsrt"
)

// Server exposes an Executor over HTTP JSON:
//
//	POST   /v1/jobs            submit one job
//	GET    /v1/jobs/{id}       job status (+ inline report when done);
//	                           ?wait=1 or ?wait_ms=N long-polls for completion,
//	                           &cancel_on_disconnect=1 cancels if the client goes away
//	GET    /v1/jobs/{id}/report     raw canonical result bytes (ETag = result hash)
//	GET    /v1/jobs/{id}/trace      structured run trace: lifecycle stages +
//	                                scheduler/DVFS events (WithTrace jobs);
//	                                ?format=csv for the raw event stream
//	GET    /v1/jobs/{id}/trace.svg  activity/DVFS profile (WithTrace jobs)
//	GET    /v1/jobs/{id}/trace.csv  profile samples as CSV
//	DELETE /v1/jobs/{id}       cancel
//	POST   /v1/sweeps          submit a kernel × variant × system matrix
//	GET    /metrics            Prometheus-style counters
//	GET    /healthz            200 ok / 503 draining (liveness)
//	GET    /readyz             200 only after crash recovery finishes (readiness)
//
// Overload responses carry a Retry-After header: 429 when a client exhausts
// its token bucket, 503 when admission control sheds the job. Bodies past
// the configured cap are rejected with 413.
type Server struct {
	ex      *Executor
	mux     *http.ServeMux
	limiter *RateLimiter
	opts    ServerOptions
	// phase is the current startup phase ("" = ready). While non-empty,
	// /readyz reports degraded with the phase as the reason, so load
	// balancers don't route to a node still replaying its journal or
	// registering with a fabric coordinator.
	phase atomic.Value // string
}

// ServerOptions tunes the HTTP-layer protections. The zero value disables
// rate limiting and uses the default body cap.
type ServerOptions struct {
	// RatePerSec grants each client this many submissions per second
	// (<= 0 disables rate limiting).
	RatePerSec float64
	// Burst is the token-bucket depth per client (minimum 1 when
	// limiting is on).
	Burst int
	// MaxBodyBytes caps POST bodies (default 1 MiB). Oversized requests
	// get 413 without reading the excess.
	MaxBodyBytes int64
}

// NewServer wraps ex in the HTTP API with default options and readiness
// already set (single-process uses that never replay a journal).
func NewServer(ex *Executor) *Server {
	return NewServerWithOptions(ex, ServerOptions{})
}

// NewServerWithOptions wraps ex with explicit HTTP-layer protections. The
// server starts ready; callers that replay a journal should SetReady(false)
// before listening and SetReady(true) once Recover returns.
func NewServerWithOptions(ex *Executor, opts ServerOptions) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	s := &Server{ex: ex, mux: http.NewServeMux(), opts: opts}
	if opts.RatePerSec > 0 {
		s.limiter = NewRateLimiter(opts.RatePerSec, opts.Burst)
	}
	s.phase.Store("")
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.getReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.getTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace.svg", s.getTraceSVG)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace.csv", s.getTraceCSV)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.submitSweep)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	return s
}

// SetReady flips the /readyz signal. Keep it false while replaying the
// journal so load balancers don't route traffic to a server still rebuilding
// its queue. Equivalent to SetPhase("journal replay") / SetPhase("").
func (s *Server) SetReady(ready bool) {
	if ready {
		s.SetPhase("")
	} else {
		s.SetPhase("journal replay")
	}
}

// SetPhase names the startup work still in progress ("" = done). While a
// phase is set, /readyz answers 503 with {"status":"degraded","reason":phase}
// — distinct from draining — so orchestrators can tell a cold node from a
// dying one. Used for journal replay and fabric worker registration.
func (s *Server) SetPhase(phase string) { s.phase.Store(phase) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// JobRequest is the JSON submission body. Zero values take the evaluation
// defaults (seed 42, scale 1.0, 4B4L, base+psm).
type JobRequest struct {
	Kernel  string  `json:"kernel"`
	System  string  `json:"system,omitempty"`
	Variant string  `json:"variant,omitempty"`
	Seed    *uint64 `json:"seed,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Check   *bool   `json:"check,omitempty"`
	NBig    int     `json:"nbig,omitempty"`
	NLit    int     `json:"nlit,omitempty"`
	// Elastic turns on elastic work-stealing; Topology replaces the
	// system's 2-class core mix with an N-way class list.
	Elastic  bool             `json:"elastic,omitempty"`
	Topology []core.CoreClass `json:"topology,omitempty"`

	WithTrace      bool          `json:"with_trace,omitempty"`
	MemStall       bool          `json:"mem_stall,omitempty"`
	AdaptiveDVFS   bool          `json:"adaptive_dvfs,omitempty"`
	CacheModel     bool          `json:"cache_model,omitempty"`
	DisableBiasing bool          `json:"disable_biasing,omitempty"`
	MaxEvents      uint64        `json:"max_events,omitempty"`
	Faults         *fault.Config `json:"faults,omitempty"`

	Priority  int   `json:"priority,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"no_cache,omitempty"`
}

// ToSpec resolves the request into a validated core.Spec.
func (req JobRequest) ToSpec() (core.Spec, error) {
	sysName := req.System
	if sysName == "" {
		sysName = "4B4L"
	}
	sys, ok := core.ParseSystem(sysName)
	if !ok && req.NBig == 0 {
		return core.Spec{}, fmt.Errorf("unknown system %q", req.System)
	}
	variant := req.Variant
	if variant == "" {
		variant = "base+psm"
	}
	v, ok := wsrt.ParseVariant(variant)
	if !ok {
		return core.Spec{}, fmt.Errorf("unknown variant %q", req.Variant)
	}
	spec := core.Spec{
		Kernel:         req.Kernel,
		System:         sys,
		Variant:        v,
		Seed:           42,
		Scale:          req.Scale,
		WithTrace:      req.WithTrace,
		MemStall:       req.MemStall,
		Check:          true,
		AdaptiveDVFS:   req.AdaptiveDVFS,
		CacheModel:     req.CacheModel,
		DisableBiasing: req.DisableBiasing,
		NBig:           req.NBig,
		NLit:           req.NLit,
		Elastic:        req.Elastic,
		Topology:       req.Topology,
		MaxEvents:      req.MaxEvents,
		Faults:         req.Faults,
	}
	if req.Seed != nil {
		spec.Seed = *req.Seed
	}
	if req.Check != nil {
		spec.Check = *req.Check
	}
	return Normalize(spec), nil
}

func (req JobRequest) submitOptions() SubmitOptions {
	return SubmitOptions{
		Priority: req.Priority,
		Timeout:  time.Duration(req.TimeoutMs) * time.Millisecond,
		NoCache:  req.NoCache,
	}
}

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID         string          `json:"id"`
	SpecHash   string          `json:"spec_hash"`
	State      string          `json:"state"`
	Tenant     string          `json:"tenant,omitempty"`
	Kernel     string          `json:"kernel"`
	System     string          `json:"system"`
	Variant    string          `json:"variant"`
	Seed       uint64          `json:"seed"`
	CacheHit   bool            `json:"cache_hit"`
	Coalesced  bool            `json:"coalesced"`
	Attempts   int             `json:"attempts,omitempty"`
	Error      string          `json:"error,omitempty"`
	ElapsedMs  float64         `json:"elapsed_ms,omitempty"`
	ResultHash string          `json:"result_hash,omitempty"`
	Report     json.RawMessage `json:"report,omitempty"`
}

func statusOf(s Snapshot) JobStatus {
	js := JobStatus{
		ID:        s.ID,
		SpecHash:  s.SpecHash,
		State:     s.State.String(),
		Tenant:    s.Tenant,
		Kernel:    s.Spec.Kernel,
		System:    s.Spec.System.String(),
		Variant:   s.Spec.Variant.String(),
		Seed:      s.Spec.Seed,
		CacheHit:  s.CacheHit,
		Coalesced: s.Coalesced,
		Attempts:  s.Attempts,
	}
	if s.Err != nil {
		js.Error = s.Err.Error()
	}
	if d := s.Elapsed(); d > 0 {
		js.ElapsedMs = float64(d) / float64(time.Millisecond)
	}
	if s.State == StateDone {
		js.ResultHash = ResultHash(s.Data)
		js.Report = json.RawMessage(s.Data)
	}
	return js
}

// maxTenantKeyLen bounds the accepted tenant identity; longer keys are
// rejected rather than truncated (truncation would silently merge tenants).
const maxTenantKeyLen = 128

// tenantFrom extracts the caller's tenant identity: the X-AAWS-Client header
// when present (multi-tenant proxies), else the remote host. The one helper
// feeds rate limiting, weighted-fair scheduling, and cache quotas, so every
// layer agrees on who a request belongs to. An explicitly empty or oversized
// header is a client error (400) — silently bucketing malformed identities
// together would let them share (and exhaust) one tenant's quota.
func tenantFrom(r *http.Request) (string, error) {
	if vals, ok := r.Header["X-Aaws-Client"]; ok {
		k := vals[0]
		switch {
		case k == "":
			return "", errors.New("X-AAWS-Client header present but empty")
		case len(k) > maxTenantKeyLen:
			return "", fmt.Errorf("X-AAWS-Client header exceeds %d bytes", maxTenantKeyLen)
		}
		return k, nil
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host, nil
	}
	return r.RemoteAddr, nil
}

// decodeBody parses a capped JSON body into v, writing the appropriate
// error response (413 for oversized, 400 for malformed) on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// rateLimit enforces the per-tenant token bucket, answering 429 with a
// Retry-After header when the bucket is dry.
func (s *Server) rateLimit(w http.ResponseWriter, tenant string) bool {
	ok, wait := s.limiter.Allow(tenant)
	if !ok {
		writeRetryError(w, http.StatusTooManyRequests,
			&RetryAfterError{Err: ErrRateLimited, RetryAfter: wait})
		return false
	}
	return true
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.rateLimit(w, tenant) {
		return
	}
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	spec, err := req.ToSpec()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opts := req.submitOptions()
	opts.Tenant = tenant
	job, err := s.ex.Submit(spec, opts)
	if err != nil {
		s.submitError(w, err)
		return
	}
	snap, _ := s.ex.Get(job.ID)
	code := http.StatusAccepted
	if snap.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, statusOf(snap))
}

// SweepRequest submits the cross product kernels × systems × variants ×
// seeds as one batch. Empty lists default to all kernels / 4B4L / all five
// variants / seed 42.
type SweepRequest struct {
	Kernels  []string `json:"kernels,omitempty"`
	Systems  []string `json:"systems,omitempty"`
	Variants []string `json:"variants,omitempty"`
	Seeds    []uint64 `json:"seeds,omitempty"`
	Scale    float64  `json:"scale,omitempty"`
	Check    bool     `json:"check,omitempty"`
	// Elastic turns on elastic work-stealing for every cell; Topology
	// replaces each system's 2-class core mix with an N-way class list.
	Elastic  bool             `json:"elastic,omitempty"`
	Topology []core.CoreClass `json:"topology,omitempty"`

	Priority  int   `json:"priority,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"no_cache,omitempty"`
}

// SweepResponse lists the submitted jobs in matrix order.
type SweepResponse struct {
	Count int      `json:"count"`
	IDs   []string `json:"ids"`
}

// Specs expands the request into its cell specs in matrix order, applying
// the defaults (all kernels / 4B4L / all five variants / seed 42). The same
// expansion serves the single-node sweep endpoint and the fabric
// coordinator's, so a matrix shards into exactly the cells it would run
// locally.
func (req SweepRequest) Specs() ([]core.Spec, error) {
	kernelNames := req.Kernels
	if len(kernelNames) == 0 {
		kernelNames = kernels.Names()
	}
	systems := req.Systems
	if len(systems) == 0 {
		systems = []string{"4B4L"}
	}
	variantNames := req.Variants
	if len(variantNames) == 0 {
		for _, v := range wsrt.Variants {
			variantNames = append(variantNames, v.String())
		}
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{42}
	}
	var specs []core.Spec
	for _, kname := range kernelNames {
		for _, sysName := range systems {
			sys, ok := core.ParseSystem(sysName)
			if !ok {
				return nil, fmt.Errorf("unknown system %q", sysName)
			}
			for _, vname := range variantNames {
				v, ok := wsrt.ParseVariant(vname)
				if !ok {
					return nil, fmt.Errorf("unknown variant %q", vname)
				}
				for _, seed := range seeds {
					specs = append(specs, core.Spec{
						Kernel: kname, System: sys, Variant: v,
						Seed: seed, Scale: req.Scale, Check: req.Check,
						Elastic: req.Elastic, Topology: req.Topology,
					})
				}
			}
		}
	}
	return specs, nil
}

func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.rateLimit(w, tenant) {
		return
	}
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	specs, err := req.Specs()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Sweep matrices run in the concurrency-limited sweep class so a big
	// batch cannot occupy every worker and starve interactive jobs.
	opts := SubmitOptions{
		Priority: req.Priority,
		Class:    ClassSweep,
		Tenant:   tenant,
		Timeout:  time.Duration(req.TimeoutMs) * time.Millisecond,
		NoCache:  req.NoCache,
	}
	// The matrix goes down as one gang: fresh cells run together through
	// the partitioned batch path on a single worker (and a single
	// sweep-class slot), while cache hits and duplicates still resolve per
	// cell.
	batch, err := s.ex.SubmitBatch(specs, opts)
	if err != nil {
		s.submitError(w, err)
		return
	}
	var resp SweepResponse
	for _, job := range batch {
		resp.IDs = append(resp.IDs, job.ID)
	}
	resp.Count = len(resp.IDs)
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	if q.Get("wait") != "" || q.Get("wait_ms") != "" {
		// Long-poll: block on the request context so a disconnecting
		// client releases the handler immediately — and, on request,
		// cancels the job it was waiting for (nobody left to read the
		// result).
		ctx := r.Context()
		if ms, err := strconv.Atoi(q.Get("wait_ms")); err == nil && ms > 0 {
			var cancel func()
			ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
			defer cancel()
		}
		snap, err := s.ex.Wait(ctx, id)
		switch {
		case errors.Is(err, ErrUnknownJob):
			httpError(w, http.StatusNotFound, err)
			return
		case err != nil:
			if r.Context().Err() != nil && q.Get("cancel_on_disconnect") != "" {
				_, _ = s.ex.Cancel(id)
				return // client is gone; nothing to write
			}
			// wait_ms elapsed: report current state like a plain GET.
			snap, err = s.ex.Get(id)
			if err != nil {
				httpError(w, http.StatusNotFound, err)
				return
			}
		}
		writeJSON(w, http.StatusOK, statusOf(snap))
		return
	}
	snap, err := s.ex.Get(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(snap))
}

func (s *Server) getReport(w http.ResponseWriter, r *http.Request) {
	snap, err := s.ex.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if snap.State != StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s, report not available", snap.State))
		return
	}
	etag := `"` + ResultHash(snap.Data) + `"`
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap.Data)
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	state, err := s.ex.Cancel(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": state.String()})
}

// traceRecorder fetches a job's recorder, writing the appropriate HTTP
// error when unavailable.
func (s *Server) traceRecorder(w http.ResponseWriter, r *http.Request) (*trace.Recorder, Snapshot, bool) {
	rec, snap, err := s.ex.TraceRecorder(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return nil, Snapshot{}, false
	}
	if !snap.State.Terminal() {
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s, trace not available yet", snap.State))
		return nil, Snapshot{}, false
	}
	if rec == nil {
		httpError(w, http.StatusNotFound, errors.New(
			"no trace: submit with with_trace=true and no_cache=true (cached/coalesced results carry no recorder)"))
		return nil, Snapshot{}, false
	}
	return rec, snap, true
}

// TraceStage is one wall-clock lifecycle segment in the /trace response,
// with bounds in milliseconds since submission.
type TraceStage struct {
	Stage   string  `json:"stage"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
}

// TraceResponse is the JSON body of GET /v1/jobs/{id}/trace: the job's
// wall-clock lifecycle (submit → queue → execute) plus the simulation's
// scheduler/DVFS event ring.
type TraceResponse struct {
	ID       string          `json:"id"`
	Kernel   string          `json:"kernel"`
	System   string          `json:"system"`
	Variant  string          `json:"variant"`
	Seed     uint64          `json:"seed"`
	Attempts int             `json:"attempts,omitempty"`
	Stages   []TraceStage    `json:"stages"`
	Sched    json.RawMessage `json:"sched"`
}

// getTrace serves the structured run trace. Like the SVG/CSV profile
// endpoints it requires a job that simulated locally with with_trace=true
// (cache hits and coalesced duplicates carry no ring).
func (s *Server) getTrace(w http.ResponseWriter, r *http.Request) {
	sched, snap, err := s.ex.SchedTrace(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if !snap.State.Terminal() {
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s, trace not available yet", snap.State))
		return
	}
	if sched == nil {
		httpError(w, http.StatusNotFound, errors.New(
			"no trace: submit with with_trace=true and no_cache=true (cached/coalesced results carry no event ring)"))
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		_ = sched.WriteCSV(w)
		return
	}
	ms := func(t time.Time) float64 {
		return float64(t.Sub(snap.Submitted)) / float64(time.Millisecond)
	}
	resp := TraceResponse{
		ID:       snap.ID,
		Kernel:   snap.Spec.Kernel,
		System:   snap.Spec.System.String(),
		Variant:  snap.Spec.Variant.String(),
		Seed:     snap.Spec.Seed,
		Attempts: snap.Attempts,
		Stages: []TraceStage{
			{Stage: "queued", StartMs: 0, EndMs: ms(snap.Started)},
			{Stage: "running", StartMs: ms(snap.Started), EndMs: ms(snap.Finished)},
		},
	}
	var buf bytes.Buffer
	if err := sched.WriteJSON(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp.Sched = buf.Bytes()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) getTraceSVG(w http.ResponseWriter, r *http.Request) {
	rec, snap, ok := s.traceRecorder(w, r)
	if !ok {
		return
	}
	nBig, nLit := snap.Spec.System.Counts()
	if snap.Spec.NBig > 0 {
		nBig, nLit = snap.Spec.NBig, snap.Spec.NLit
	}
	marks := schedMarks(s.ex, snap.ID)
	w.Header().Set("Content-Type", "image/svg+xml")
	if err := rec.WriteSVGWithMarks(w, trace.CoreNames(nBig, nLit), 1600, marks); err != nil {
		// Headers are gone; all we can do is stop streaming.
		return
	}
}

// schedMarks projects the job's scheduler event ring onto SVG overlay dots:
// green for steals, orange for mug deliveries, red for core fail-stops.
// Returns nil when the job has no ring.
func schedMarks(ex *Executor, id string) []trace.Mark {
	sched, _, err := ex.SchedTrace(id)
	if err != nil || sched == nil {
		return nil
	}
	var marks []trace.Mark
	for _, e := range sched.Events() {
		var color string
		switch e.Kind {
		case obs.KindSteal:
			color = "#2ca02c"
		case obs.KindMugDelivered:
			color = "#ff7f0e"
		case obs.KindCoreFail:
			color = "#d62728"
		default:
			continue
		}
		marks = append(marks, trace.Mark{At: e.At, Core: int(e.Core), Color: color})
	}
	return marks
}

func (s *Server) getTraceCSV(w http.ResponseWriter, r *http.Request) {
	rec, snap, ok := s.traceRecorder(w, r)
	if !ok {
		return
	}
	nBig, nLit := snap.Spec.System.Counts()
	if snap.Spec.NBig > 0 {
		nBig, nLit = snap.Spec.NBig, snap.Spec.NLit
	}
	w.Header().Set("Content-Type", "text/csv")
	_ = rec.WriteCSV(w, trace.CoreNames(nBig, nLit), 200)
}

// metrics renders the unified registry: the executor's live instruments
// (latency histograms, simulator counters) plus the legacy snapshot series,
// synced under their historical names just before the scrape.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	m := s.ex.Metrics()
	var rl *RateLimiterStats
	if s.limiter != nil {
		st := s.limiter.Stats()
		rl = &st
	}
	reg := s.ex.Registry()
	syncLegacyMetrics(reg, m, rl)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = reg.Render(w)
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.ex.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.ex.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if phase, _ := s.phase.Load().(string); phase != "" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"reason": phase,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// retryAfterSeconds converts a back-off hint to whole seconds, rounded up
// with a floor of 1 — a sub-second wait must never serialize as "0", which
// clients read as "retry immediately" and turn into a retry stampede. The
// same value feeds the Retry-After header and the JSON error body so the
// two can never disagree.
func retryAfterSeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retryErrorBody is the JSON body of a 429/503 rejection. RetryAfterSec
// matches the Retry-After header; RetryHint tells well-behaved clients how
// to decorrelate their retries.
type retryErrorBody struct {
	Error         string `json:"error"`
	RetryAfterSec int64  `json:"retry_after_s"`
	RetryHint     string `json:"retry_hint"`
}

// writeRetryError answers an overload rejection: Retry-After header (whole
// seconds, rounded up) plus a structured body carrying the same wait and
// deterministic-jitter guidance, so a burst of rejected clients does not
// come back in lockstep at second granularity.
func writeRetryError(w http.ResponseWriter, code int, err error) {
	ra, _ := RetryAfterOf(err)
	secs := retryAfterSeconds(ra)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, code, retryErrorBody{
		Error:         err.Error(),
		RetryAfterSec: secs,
		RetryHint: fmt.Sprintf(
			"wait retry_after_s plus deterministic jitter, e.g. (hash(client_id, attempt) mod %d) ms, before retrying",
			secs*500),
	})
}

// submitError maps a Submit rejection onto HTTP: 503 for draining and
// overload shedding, 429 for a full queue, 400 otherwise. Rejections that
// carry a back-off hint get a Retry-After header and the structured
// retry body.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	_, retryable := RetryAfterOf(err)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrOverloaded):
		if retryable {
			writeRetryError(w, http.StatusServiceUnavailable, err)
			return
		}
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull):
		writeRetryError(w, http.StatusTooManyRequests, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
