// Package profiling provides the shared -cpuprofile/-memprofile/-trace/
// -benchjson plumbing for the command-line tools, so every driver exposes
// the same performance-investigation surface as cmd/aaws-bench: a pprof CPU
// profile of the main work, an allocation profile at exit, a Go runtime
// execution trace (`go tool trace`), and a small JSON summary (wall clock,
// cells, events, events/sec) consumable by scripts.
package profiling

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"time"
)

// Session owns the profile files and the wall-clock/throughput counters for
// one command invocation. The zero value (no flags set) makes every method
// a cheap no-op.
type Session struct {
	cpuPath   string
	memPath   string
	jsonPath  string
	tracePath string
	cpuFile   *os.File
	traceFile *os.File
	start     time.Time
	benchName string

	// Cells and Events are incremented by the command as work completes;
	// they feed the -benchjson summary.
	Cells  int
	Events uint64
}

// AddFlags registers the three flags on the default flag set and returns
// the session that will honor them. benchName labels the JSON summary
// (e.g. "sweep" or "chaos").
func AddFlags(benchName string) *Session {
	s := &Session{benchName: benchName}
	flag.StringVar(&s.cpuPath, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&s.memPath, "memprofile", "", "write an allocation profile to this file on exit")
	flag.StringVar(&s.jsonPath, "benchjson", "", "write a JSON run summary (wall_ms, cells, events) to this file")
	flag.StringVar(&s.tracePath, "trace", "", "write a Go runtime execution trace (go tool trace) to this file")
	return s
}

// Start begins CPU profiling and the runtime execution trace (each if
// requested) and the wall clock. Call it after flag.Parse and before the
// main work.
func (s *Session) Start() error {
	s.start = time.Now()
	if s.cpuPath != "" {
		f, err := os.Create(s.cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		s.cpuFile = f
	}
	if s.tracePath != "" {
		f, err := os.Create(s.tracePath)
		if err != nil {
			return err
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return err
		}
		s.traceFile = f
	}
	return nil
}

// Stop ends CPU profiling and writes the allocation profile and the JSON
// summary. Call it once after the main work (a defer is fine; errors are
// reported on stderr rather than returned so deferred calls stay simple).
func (s *Session) Stop() {
	wall := time.Since(s.start)
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
	}
	if s.traceFile != nil {
		rtrace.Stop()
		s.traceFile.Close()
		s.traceFile = nil
	}
	if s.memPath != "" {
		if err := s.writeMemProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}
	if s.jsonPath != "" {
		if err := s.writeJSON(wall); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
		}
	}
}

func (s *Session) writeMemProfile() error {
	f, err := os.Create(s.memPath)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

func (s *Session) writeJSON(wall time.Duration) error {
	sum := map[string]any{
		"name":    s.benchName,
		"go":      runtime.Version(),
		"wall_ms": float64(wall.Milliseconds()),
		"cells":   s.Cells,
		"events":  s.Events,
	}
	if secs := wall.Seconds(); secs > 0 {
		sum["events_per_sec"] = float64(s.Events) / secs
	}
	buf, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(s.jsonPath, append(buf, '\n'), 0o644)
}
