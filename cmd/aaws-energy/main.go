// Command aaws-energy regenerates Figure 9: every kernel's energy
// efficiency vs. performance under each AAWS technique subset, normalized
// to the baseline runtime on the same system.
//
// Usage:
//
//	aaws-energy                  # 4B4L table
//	aaws-energy -csv > fig9.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"aaws/internal/core"
	"aaws/internal/energymicro"
	"aaws/internal/power"
	"aaws/internal/wsrt"
)

func main() {
	system := flag.String("system", "4B4L", "4B4L or 1B7L")
	scale := flag.Float64("scale", 1.0, "input size multiplier")
	seed := flag.Uint64("seed", 42, "seed")
	csv := flag.Bool("csv", false, "CSV output")
	micro := flag.Bool("micro", false, "run the Section IV-E energy microbenchmark suite instead")
	flag.Parse()

	if *micro {
		results := energymicro.RunSuite(power.DefaultParams())
		energymicro.Write(os.Stdout, results)
		if err := energymicro.Validate(results, 1e-3); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("\nall microbenchmarks correlate with the first-order model (tol 0.1%)")
		return
	}

	sys, ok := core.ParseSystem(*system)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	opt := core.DefaultSweep(sys)
	opt.Scale = *scale
	opt.Seed = *seed
	rows, err := core.Sweep(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pts := core.Figure9(rows)

	if *csv {
		fmt.Println("kernel,variant,perf,energy_eff,power_ratio")
		for _, p := range pts {
			fmt.Printf("%s,%s,%.4f,%.4f,%.4f\n", p.Kernel, p.Variant, p.Perf, p.EnergyEff, p.PowerRatio)
		}
		return
	}

	fmt.Printf("Figure 9 — energy efficiency vs performance on %s, normalized to base\n", sys)
	fmt.Printf("(points above the isopower diagonal draw less power than base)\n\n")
	fmt.Printf("%-10s %-9s %10s %12s %12s %10s\n", "kernel", "variant", "perf", "energy-eff", "power", "isopower")
	for _, p := range pts {
		side := "below"
		if p.PowerRatio <= 1 {
			side = "above"
		}
		fmt.Printf("%-10s %-9s %9.3fx %11.3fx %11.3fx %10s\n",
			p.Kernel, p.Variant, p.Perf, p.EnergyEff, p.PowerRatio, side)
	}
	for _, v := range []wsrt.Variant{wsrt.BaseP, wsrt.BasePS, wsrt.BasePSM, wsrt.BaseM} {
		var nPerf, nEff, n int
		for _, p := range pts {
			if p.Variant != v {
				continue
			}
			n++
			if p.Perf > 1 {
				nPerf++
			}
			if p.EnergyEff > 1 {
				nEff++
			}
		}
		fmt.Printf("\n%-9s: %d/%d kernels faster, %d/%d more energy-efficient", v, nPerf, n, nEff, n)
	}
	fmt.Println()
}
