// Command aaws-chaos sweeps deterministic fault schedules — a lossy/slow
// interrupt network, core fail-stops and thermal throttles, stuck and slow
// voltage regulators — across kernels and runtime variants, verifying that
// every run still produces a correct result and reporting the performance
// and energy degradation against the fault-free baseline.
//
// Every cell of the sweep is bit-reproducible: the workload seed and the
// fault seed fully determine the schedule, so -verify can re-run a cell and
// demand an identical report fingerprint.
//
// Usage:
//
//	aaws-chaos -kernels cilksort -variants base+psm -drop-rates 0.1,0.5,1
//	aaws-chaos -kernels radix-2 -fail 6@40% -verify
//	aaws-chaos -kernels cilksort -vr-stuck 0.2 -csv
//	aaws-chaos -kernels cilksort -cache -cache-dir .aaws-cache   # via the jobs executor
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
	"strings"

	"aaws/internal/core"
	"aaws/internal/fault"
	"aaws/internal/jobs"
	"aaws/internal/profiling"
	"aaws/internal/sim"
	"aaws/internal/wsrt"
)

// runner executes one sweep cell; forceFresh bypasses the result cache so
// -verify's replay genuinely re-simulates instead of re-reading its own
// cached bytes.
type runner func(spec core.Spec, forceFresh bool) (core.Result, error)

func main() {
	kernelsFlag := flag.String("kernels", "cilksort", "comma-separated kernel names")
	system := flag.String("system", "4B4L", "target system: 4B4L or 1B7L")
	variantsFlag := flag.String("variants", "base+psm", "comma-separated runtime variants")
	scale := flag.Float64("scale", 1.0, "input size multiplier")
	seed := flag.Uint64("seed", 42, "input/scheduling seed")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for probabilistic fault decisions")
	dropRates := flag.String("drop-rates", "0,0.1,0.5,1", "comma-separated mug-interrupt drop probabilities to sweep")
	delayRate := flag.Float64("delay-rate", 0, "mug-interrupt delay probability (applied at every sweep point)")
	delayMax := flag.String("delay-max", "", "max extra interrupt delay, e.g. 500ns (default 10x network latency)")
	vrStuck := flag.Float64("vr-stuck", 0, "probability a regulator transition sticks")
	vrSlow := flag.Float64("vr-slow", 0, "probability a regulator transition is slowed")
	vrSlowMax := flag.Float64("vr-slow-max", 0, "max regulator slow-down factor (default 16)")
	failSpecs := flag.String("fail", "", "comma-separated core fail-stops: CORE@TIME, TIME = 40% of baseline or absolute (120us)")
	throttleSpecs := flag.String("throttle", "", "comma-separated throttles: CORE@TIME:FACTOR:FOR, e.g. 3@40%:0.5:50us")
	maxEvents := flag.Uint64("max-events", 200_000_000, "liveness watchdog: abort after this many simulation events (0 = unlimited)")
	verify := flag.Bool("verify", false, "run every cell twice and require bit-identical reports")
	csv := flag.Bool("csv", false, "emit CSV instead of the human-readable table")
	useCache := flag.Bool("cache", false, "run cells through the jobs executor with a content-addressed result cache")
	cacheDir := flag.String("cache-dir", "", "on-disk result store (implies -cache)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "executor worker-pool size (with -cache)")
	fabricMode := flag.Bool("fabric", false, "run the distributed-fabric chaos scenarios instead of the fault sweep")
	fabricScenario := flag.String("fabric-scenario", "all", "fabric chaos scenario: coord-crash, zombie, reorder, cache-outage, or all")
	fabricNodes := flag.Int("fabric-nodes", 3, "fabric chaos: in-process worker nodes")
	fabricFP := flag.String("fabric-fingerprint", "", "fabric chaos: committed fingerprint file to gate coord-crash recovery against")
	fabricOut := flag.String("fabric-out", "", "fabric chaos: write a JSON report")
	prof := profiling.AddFlags("chaos")
	flag.Parse()

	if *fabricMode {
		os.Exit(runFabricChaos(fabricChaosOptions{
			scenario: *fabricScenario,
			nodes:    *fabricNodes,
			system:   *system,
			seed:     *seed,
			scale:    *scale,
			fpPath:   *fabricFP,
			outPath:  *fabricOut,
		}))
	}

	run := runner(func(spec core.Spec, _ bool) (core.Result, error) { return core.Run(spec) })
	if *useCache || *cacheDir != "" {
		cache, err := jobs.NewCache(4096, *cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		ex := jobs.NewExecutor(jobs.Config{Workers: *workers, Cache: cache})
		defer ex.Close()
		run = func(spec core.Spec, forceFresh bool) (core.Result, error) {
			res, _, err := ex.Result(context.Background(), spec, jobs.SubmitOptions{NoCache: forceFresh})
			return res, err
		}
	}
	// Count cells and simulation events for the -benchjson summary.
	innerRun := run
	run = func(spec core.Spec, forceFresh bool) (core.Result, error) {
		res, err := innerRun(spec, forceFresh)
		if err == nil {
			prof.Cells++
			prof.Events += res.Report.Events
		}
		return res, err
	}

	sys, ok := core.ParseSystem(*system)
	if !ok {
		fatalf("unknown system %q", *system)
	}
	var variants []wsrt.Variant
	for _, s := range strings.Split(*variantsFlag, ",") {
		v, ok := wsrt.ParseVariant(strings.TrimSpace(s))
		if !ok {
			fatalf("unknown variant %q", s)
		}
		variants = append(variants, v)
	}
	if err := prof.Start(); err != nil {
		fatalf("%v", err)
	}
	kernelList := splitList(*kernelsFlag)
	var rates []float64
	for _, s := range splitList(*dropRates) {
		r, err := strconv.ParseFloat(s, 64)
		if err != nil || r < 0 || r > 1 {
			fatalf("bad drop rate %q", s)
		}
		rates = append(rates, r)
	}
	fails, err := parseFails(*failSpecs)
	if err != nil {
		fatalf("%v", err)
	}
	throttles, err := parseThrottles(*throttleSpecs)
	if err != nil {
		fatalf("%v", err)
	}
	var delayMaxT sim.Time
	if *delayMax != "" {
		if delayMaxT, err = parseTime(*delayMax); err != nil {
			fatalf("bad -delay-max: %v", err)
		}
	}

	if *csv {
		fmt.Println("kernel,variant,system,seed,fault_seed,drop_rate,delay_rate,vr_stuck,vr_slow,fails,throttles," +
			"time_ps,time_ratio,energy,energy_ratio,core_fails,tasks_rescued,msgs_dropped,msgs_delayed," +
			"mug_timeouts,mug_resends,mug_abandoned,mug_stale,stuck_regs,verified")
	}

	exitCode := 0
	for _, kname := range kernelList {
		for _, v := range variants {
			base := core.DefaultSpec(kname, sys, v)
			base.Scale = *scale
			base.Seed = *seed
			base.MaxEvents = *maxEvents
			if err := base.Validate(); err != nil {
				fatalf("%v", err)
			}
			baseRes, err := run(base, false)
			if err != nil {
				fatalf("baseline %s/%s: %v", kname, v, err)
			}
			if err := baseRes.Verify(); err != nil {
				fatalf("baseline %s/%s failed verification: %v", kname, v, err)
			}
			if !*csv {
				fmt.Printf("%s on %s under %s (seed %d, fault seed %d)\n", kname, sys, v, *seed, *faultSeed)
				fmt.Printf("  %-28s time %14v   energy %10.4g   (fault-free baseline, verified OK)\n",
					"baseline", baseRes.Report.ExecTime, baseRes.Report.TotalEnergy)
			}
			for _, rate := range rates {
				fc := &fault.Config{
					Seed:         *faultSeed,
					MugDropRate:  rate,
					MugDelayRate: *delayRate,
					MugDelayMax:  delayMaxT,
					VRStuckRate:  *vrStuck,
					VRSlowRate:   *vrSlow,
					VRSlowMax:    *vrSlowMax,
					Fails:        resolveFails(fails, baseRes.Report.ExecTime),
					Throttles:    resolveThrottles(throttles, baseRes.Report.ExecTime),
				}
				if !fc.Enabled() {
					fc = nil
				}
				spec := base
				spec.Faults = fc
				if err := runCell(run, spec, baseRes, rate, *verify, *csv); err != nil {
					fmt.Fprintf(os.Stderr, "FAIL %s/%s drop=%g: %v\n", kname, v, rate, err)
					exitCode = 1
				}
			}
		}
	}
	// Explicit rather than deferred: os.Exit skips defers.
	prof.Stop()
	os.Exit(exitCode)
}

// runCell runs one sweep point, verifies correctness, optionally re-runs it
// to prove bit-reproducibility, and prints one row.
func runCell(run runner, spec core.Spec, base core.Result, rate float64, verify, csv bool) error {
	res, err := run(spec, false)
	if err != nil {
		return err
	}
	if err := res.Verify(); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	verified := "-"
	if verify {
		// The replay must bypass the cache — a cache hit would just hand
		// back the first run's bytes and prove nothing.
		res2, err := run(spec, true)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		f1, f2 := fingerprint(res), fingerprint(res2)
		if f1 != f2 {
			return fmt.Errorf("non-deterministic: fingerprints %x != %x across same-seed runs", f1, f2)
		}
		verified = fmt.Sprintf("%x", f1)
	}
	rep := res.Report
	timeRatio := float64(rep.ExecTime) / float64(base.Report.ExecTime)
	energyRatio := rep.TotalEnergy / base.Report.TotalEnergy
	fc := spec.Faults
	if fc == nil {
		fc = &fault.Config{}
	}
	if csv {
		fmt.Printf("%s,%s,%s,%d,%d,%g,%g,%g,%g,%d,%d,%d,%.4f,%.6g,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
			spec.Kernel, spec.Variant, spec.System, spec.Seed, fc.Seed,
			fc.MugDropRate, fc.MugDelayRate, fc.VRStuckRate, fc.VRSlowRate,
			len(fc.Fails), len(fc.Throttles),
			int64(rep.ExecTime), timeRatio, rep.TotalEnergy, energyRatio,
			rep.CoreFails, rep.TasksRescued, rep.MugsDropped, rep.MugsDelayed,
			rep.MugTimeouts, rep.MugResends, rep.MugAbandoned, rep.MugStale,
			rep.StuckRegs, verified)
		return nil
	}
	label := fmt.Sprintf("drop=%.2f", rate)
	if len(fc.Fails) > 0 {
		label += fmt.Sprintf(" fails=%d", len(fc.Fails))
	}
	fmt.Printf("  %-28s time %14v (%+6.1f%%)  energy %10.4g (%+6.1f%%)  verified OK\n",
		label, rep.ExecTime, 100*(timeRatio-1), rep.TotalEnergy, 100*(energyRatio-1))
	fmt.Printf("  %-28s dropped %d, delayed %d, mug timeouts %d, resends %d, abandoned %d, stale %d\n",
		"", rep.MugsDropped, rep.MugsDelayed, rep.MugTimeouts, rep.MugResends, rep.MugAbandoned, rep.MugStale)
	if rep.CoreFails > 0 || rep.TasksRescued > 0 || rep.StuckRegs > 0 {
		fmt.Printf("  %-28s core fails %d, tasks rescued %d, stuck regulators %d\n",
			"", rep.CoreFails, rep.TasksRescued, rep.StuckRegs)
	}
	if verify {
		fmt.Printf("  %-28s replay fingerprint %s (bit-identical)\n", "", verified)
	}
	return nil
}

// fingerprint hashes everything observable about a run: the full report
// (timing, energy breakdowns, every counter) and the injected-fault counts.
func fingerprint(res core.Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%+v|%+v|%+v", res.Report, res.Faults, res.Regions, res.SerialInstr)
	return h.Sum64()
}

// failSpec is one parsed -fail entry; the time is either a fraction of the
// fault-free baseline execution time or absolute.
type failSpec struct {
	core int
	frac float64 // valid when pct
	abs  sim.Time
	pct  bool
}

type throttleSpec struct {
	failSpec
	factor float64
	dur    sim.Time
}

// parseFails parses "6@40%,5@120us".
func parseFails(s string) ([]failSpec, error) {
	var out []failSpec
	for _, part := range splitList(s) {
		fs, err := parseFailSpec(part)
		if err != nil {
			return nil, err
		}
		out = append(out, fs)
	}
	return out, nil
}

func parseFailSpec(part string) (failSpec, error) {
	c, at, ok := strings.Cut(part, "@")
	if !ok {
		return failSpec{}, fmt.Errorf("bad fail spec %q (want CORE@TIME)", part)
	}
	id, err := strconv.Atoi(c)
	if err != nil {
		return failSpec{}, fmt.Errorf("bad core in fail spec %q", part)
	}
	fs := failSpec{core: id}
	if strings.HasSuffix(at, "%") {
		p, err := strconv.ParseFloat(strings.TrimSuffix(at, "%"), 64)
		if err != nil || p < 0 {
			return failSpec{}, fmt.Errorf("bad percentage in fail spec %q", part)
		}
		fs.pct, fs.frac = true, p/100
		return fs, nil
	}
	if fs.abs, err = parseTime(at); err != nil {
		return failSpec{}, fmt.Errorf("bad time in fail spec %q: %v", part, err)
	}
	return fs, nil
}

// parseThrottles parses "3@40%:0.5:50us" entries.
func parseThrottles(s string) ([]throttleSpec, error) {
	var out []throttleSpec
	for _, part := range splitList(s) {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad throttle spec %q (want CORE@TIME:FACTOR:FOR)", part)
		}
		fs, err := parseFailSpec(fields[0])
		if err != nil {
			return nil, err
		}
		factor, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || factor <= 0 || factor > 1 {
			return nil, fmt.Errorf("bad factor in throttle spec %q", part)
		}
		dur, err := parseTime(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bad duration in throttle spec %q: %v", part, err)
		}
		out = append(out, throttleSpec{failSpec: fs, factor: factor, dur: dur})
	}
	return out, nil
}

// resolveFails converts parsed specs to absolute-time schedule entries
// using the baseline execution time for percentage specs.
func resolveFails(specs []failSpec, baseline sim.Time) []fault.CoreFail {
	var out []fault.CoreFail
	for _, fs := range specs {
		out = append(out, fault.CoreFail{Core: fs.core, At: fs.resolve(baseline)})
	}
	return out
}

func resolveThrottles(specs []throttleSpec, baseline sim.Time) []fault.Throttle {
	var out []fault.Throttle
	for _, ts := range specs {
		out = append(out, fault.Throttle{
			Core: ts.core, At: ts.resolve(baseline), For: ts.dur, Factor: ts.factor,
		})
	}
	return out
}

func (fs failSpec) resolve(baseline sim.Time) sim.Time {
	if fs.pct {
		return sim.Time(fs.frac * float64(baseline))
	}
	return fs.abs
}

// parseTime parses an absolute simulated duration like "120us", "500ns",
// "3ms" or "1.5s".
func parseTime(s string) (sim.Time, error) {
	units := []struct {
		suffix string
		unit   sim.Time
	}{
		{"ns", sim.Nanosecond}, {"us", sim.Microsecond}, {"ms", sim.Millisecond}, {"s", sim.Second},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(s, u.suffix), 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("bad duration %q", s)
			}
			return sim.Time(v * float64(u.unit)), nil
		}
	}
	return 0, fmt.Errorf("bad duration %q (want a ns/us/ms/s suffix)", s)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
