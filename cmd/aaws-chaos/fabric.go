// Fabric chaos scenarios: deterministic, seeded adversarial drills for the
// distributed sweep fabric, run fully in-process over loopback TCP.
//
//	coord-crash   kill the coordinator mid-sweep (journal + disk cache
//	              survive), restart it on the same address, replay the
//	              journal, and require the merged fingerprint bit-identical
//	              to a single-node run
//	zombie        partition a worker mid-shard, let its replacement register
//	              (new epoch), then heal the partition and inject a stale-
//	              epoch result carrying corrupted data — the epoch fence must
//	              reject it with no duplicate shard commit
//	reorder       route every worker through a proxy that delays each wire
//	              frame by a seeded 0–8ms, so heartbeats, results, and
//	              dispatches interleave out of order — fingerprint must hold
//	cache-outage  kill the shared remote-cache tier mid-sweep — workers must
//	              degrade to local compute and the fingerprint must hold
//
// Every scenario verifies the merged fingerprint against an uninterrupted
// single-node reference computed in the same process, so any -system/-seed/
// -scale works; -fabric-fingerprint additionally gates coord-crash recovery
// against the committed value.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aaws/internal/core"
	"aaws/internal/fabric"
	"aaws/internal/jobs"
	"aaws/internal/kernels"
	"aaws/internal/wsrt"
)

type fabricChaosOptions struct {
	scenario string
	nodes    int
	system   string
	seed     uint64
	scale    float64
	fpPath   string
	outPath  string
}

type scenarioResult struct {
	Name     string   `json:"name"`
	Pass     bool     `json:"pass"`
	WallMs   float64  `json:"wall_ms"`
	Notes    []string `json:"notes,omitempty"`
	Failures []string `json:"failures,omitempty"`
}

func (r *scenarioResult) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func (r *scenarioResult) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

type fabricChaosReport struct {
	System      string           `json:"system"`
	Seed        uint64           `json:"seed"`
	Scale       float64          `json:"scale"`
	Cells       int              `json:"cells"`
	Nodes       int              `json:"nodes"`
	Reference   string           `json:"reference_fingerprint"`
	Scenarios   []scenarioResult `json:"scenarios"`
	Pass        bool             `json:"pass"`
	TotalWallMs float64          `json:"total_wall_ms"`
}

// maxWireFrame mirrors the fabric's frame bound for the proxy scanners.
const maxWireFrame = 32 << 20

func runFabricChaos(o fabricChaosOptions) int {
	sys, ok := core.ParseSystem(o.system)
	if !ok {
		fatalf("unknown system %q", o.system)
	}
	if o.nodes < 2 {
		o.nodes = 2
	}
	var specs []core.Spec
	for _, name := range kernels.Names() {
		for _, v := range wsrt.Variants {
			specs = append(specs, core.Spec{
				Kernel: name, System: sys, Variant: v,
				Seed: o.seed, Scale: o.scale,
			})
		}
	}

	fmt.Fprintf(os.Stderr, "fabric-chaos: reference pass (%d cells, %s, seed %d, scale %g)\n",
		len(specs), o.system, o.seed, o.scale)
	ref, err := referenceCells(specs)
	if err != nil {
		fatalf("reference pass: %v", err)
	}
	refFP := fabric.Fingerprint(ref)

	var committedFP string
	if o.fpPath != "" {
		blob, err := os.ReadFile(o.fpPath)
		if err != nil {
			fatalf("reading fingerprint file: %v", err)
		}
		var want struct {
			System      string  `json:"system"`
			Seed        uint64  `json:"seed"`
			Scale       float64 `json:"scale"`
			Fingerprint string  `json:"fingerprint"`
		}
		if err := json.Unmarshal(blob, &want); err != nil {
			fatalf("parsing fingerprint file: %v", err)
		}
		if want.System != o.system || want.Seed != o.seed || want.Scale != o.scale {
			fatalf("fingerprint file is for %s/seed=%d/scale=%g, running %s/seed=%d/scale=%g",
				want.System, want.Seed, want.Scale, o.system, o.seed, o.scale)
		}
		committedFP = want.Fingerprint
		if committedFP != refFP {
			fatalf("single-node reference %s does not match committed fingerprint %s", refFP, committedFP)
		}
	}

	scenarios := []struct {
		name string
		run  func() scenarioResult
	}{
		{"coord-crash", func() scenarioResult { return scenarioCoordCrash(o, specs, ref, refFP, committedFP) }},
		{"zombie", func() scenarioResult { return scenarioZombie(o, specs) }},
		{"reorder", func() scenarioResult { return scenarioReorder(o, specs, refFP) }},
		{"cache-outage", func() scenarioResult { return scenarioCacheOutage(o, specs, refFP) }},
	}

	report := fabricChaosReport{
		System: o.system, Seed: o.seed, Scale: o.scale,
		Cells: len(specs), Nodes: o.nodes,
		Reference: refFP, Pass: true,
	}
	t0 := time.Now()
	ran := 0
	for _, sc := range scenarios {
		if o.scenario != "all" && o.scenario != sc.name {
			continue
		}
		ran++
		fmt.Fprintf(os.Stderr, "fabric-chaos: scenario %s\n", sc.name)
		t := time.Now()
		res := sc.run()
		res.Name = sc.name
		res.Pass = len(res.Failures) == 0
		res.WallMs = float64(time.Since(t)) / float64(time.Millisecond)
		for _, n := range res.Notes {
			fmt.Fprintf(os.Stderr, "fabric-chaos:   %s\n", n)
		}
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "fabric-chaos:   FAIL: %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "fabric-chaos: scenario %s: %s (%.0f ms)\n",
			sc.name, passStr(res.Pass), res.WallMs)
		report.Scenarios = append(report.Scenarios, res)
		if !res.Pass {
			report.Pass = false
		}
	}
	if ran == 0 {
		fatalf("unknown fabric scenario %q (coord-crash, zombie, reorder, cache-outage, all)", o.scenario)
	}
	report.TotalWallMs = float64(time.Since(t0)) / float64(time.Millisecond)

	if o.outPath != "" {
		blob, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(o.outPath, append(blob, '\n'), 0o644); err != nil {
			fatalf("writing report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "fabric-chaos: report written to %s\n", o.outPath)
	}
	if report.Pass {
		fmt.Fprintln(os.Stderr, "fabric-chaos: PASS")
		return 0
	}
	fmt.Fprintln(os.Stderr, "fabric-chaos: FAIL")
	return 1
}

func passStr(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// referenceCells runs every spec through a plain single-node loop, producing
// the canonical outcome bytes the fabric must reproduce bit-identically.
func referenceCells(specs []core.Spec) ([][]byte, error) {
	cells := make([][]byte, 0, len(specs))
	for _, spec := range specs {
		data, err := canonicalCell(spec)
		if err != nil {
			return nil, err
		}
		cells = append(cells, data)
	}
	return cells, nil
}

func canonicalCell(spec core.Spec) ([]byte, error) {
	hash, err := jobs.SpecHash(spec)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(spec)
	if err != nil {
		return nil, fmt.Errorf("running %s/%s: %w", spec.Kernel, spec.Variant, err)
	}
	return jobs.CanonicalJSON(jobs.NewOutcome(hash, res))
}

// chaosWorker is one in-process fabric worker node plus its executor.
type chaosWorker struct {
	w      *fabric.Worker
	ex     *jobs.Executor
	cancel context.CancelFunc
}

// startChaosWorkers boots n worker nodes against coordAddr. tierFor may be
// nil (plain local caches) or supply a per-node cache tier.
func startChaosWorkers(ctx context.Context, n int, coordAddr string, tierFor func(i int) (jobs.CacheTier, error)) ([]*chaosWorker, error) {
	workers := make([]*chaosWorker, 0, n)
	for i := 0; i < n; i++ {
		var tier jobs.CacheTier
		if tierFor != nil {
			t, err := tierFor(i)
			if err != nil {
				return workers, err
			}
			tier = t
		} else {
			c, err := jobs.NewCache(1024, "")
			if err != nil {
				return workers, err
			}
			tier = c
		}
		ex := jobs.NewExecutor(jobs.Config{Workers: 2, Cache: tier})
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			Name:           fmt.Sprintf("chaos-node-%d", i),
			CoordAddr:      coordAddr,
			Executor:       ex,
			HeartbeatEvery: 100 * time.Millisecond,
			ReconnectDelay: 50 * time.Millisecond,
			ReconnectMax:   400 * time.Millisecond,
		})
		if err != nil {
			ex.Close()
			return workers, err
		}
		wctx, cancel := context.WithCancel(ctx)
		cw := &chaosWorker{w: w, ex: ex, cancel: cancel}
		go func() { _ = w.Run(wctx) }()
		workers = append(workers, cw)
		select {
		case <-w.Ready():
		case <-time.After(10 * time.Second):
			return workers, fmt.Errorf("worker %d never registered", i)
		}
	}
	return workers, nil
}

func stopChaosWorkers(ws []*chaosWorker) {
	for _, cw := range ws {
		cw.cancel()
	}
	for _, cw := range ws {
		cw.ex.Close()
	}
}

// scenarioCoordCrash kills the coordinator mid-sweep and restarts it on the
// same address with the same journal and disk cache. The recovered sweep —
// replayed tasks recomputed by the reconnecting fleet, pre-crash results
// answered from the surviving disk cache — must fingerprint bit-identical
// to the single-node reference (and the committed value, when given).
func scenarioCoordCrash(o fabricChaosOptions, specs []core.Spec, ref [][]byte, refFP, committedFP string) (r scenarioResult) {
	tmp, err := os.MkdirTemp("", "aaws-fabric-chaos-")
	if err != nil {
		r.failf("tempdir: %v", err)
		return r
	}
	defer os.RemoveAll(tmp)
	journalDir := filepath.Join(tmp, "journal")
	cacheDir := filepath.Join(tmp, "cache")

	store1, pend0, err := jobs.OpenJournal(journalDir, jobs.JournalConfig{})
	if err != nil {
		r.failf("opening journal: %v", err)
		return r
	}
	if len(pend0) != 0 {
		r.failf("fresh journal replayed %d jobs", len(pend0))
		return r
	}
	cache1, err := jobs.NewCache(8192, cacheDir)
	if err != nil {
		r.failf("disk cache: %v", err)
		return r
	}
	coord1, err := fabric.NewCoordinator(fabric.CoordConfig{
		Cache: cache1, Store: store1,
		HedgeDelay:       -1, // single dispatch path: duplicates must be zero
		HeartbeatTimeout: 2 * time.Second,
		RetryBackoff:     25 * time.Millisecond,
	})
	if err != nil {
		r.failf("coordinator: %v", err)
		return r
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.failf("listener: %v", err)
		return r
	}
	addr := ln.Addr().String()
	go func() { _ = coord1.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	workers, err := startChaosWorkers(ctx, o.nodes, addr, nil)
	defer stopChaosWorkers(workers)
	if err != nil {
		r.failf("workers: %v", err)
		return r
	}

	ids := make([]string, len(specs))
	for i, spec := range specs {
		t, err := coord1.Submit(spec)
		if err != nil {
			r.failf("submit %d: %v", i, err)
			return r
		}
		ids[i] = t.ID
	}

	// SIGKILL analog once a third of the shards have committed: abrupt, no
	// journal finalization, no task resolution.
	threshold := uint64(len(specs) / 3)
	if threshold == 0 {
		threshold = 1
	}
	killDeadline := time.Now().Add(2 * time.Minute)
	for coord1.Metrics().ShardsCompleted < threshold {
		if time.Now().After(killDeadline) {
			r.failf("sweep never reached %d committed shards", threshold)
			return r
		}
		time.Sleep(2 * time.Millisecond)
	}
	coord1.Kill()
	r.notef("killed coordinator after %d/%d shards committed", coord1.Metrics().ShardsCompleted, len(specs))

	// Restart: fresh journal replay, fresh coordinator on the same address
	// (the fleet is still retrying it), same disk cache directory.
	store2, pending, err := jobs.OpenJournal(journalDir, jobs.JournalConfig{})
	if err != nil {
		r.failf("reopening journal: %v", err)
		return r
	}
	defer store2.Close()
	if len(pending) == 0 {
		r.failf("journal replay found no pending tasks — the kill did not land mid-sweep")
		return r
	}
	cache2, err := jobs.NewCache(8192, cacheDir)
	if err != nil {
		r.failf("reopening disk cache: %v", err)
		return r
	}
	coord2, err := fabric.NewCoordinator(fabric.CoordConfig{
		Cache: cache2, Store: store2,
		HedgeDelay:       -1,
		HeartbeatTimeout: 2 * time.Second,
		RetryBackoff:     25 * time.Millisecond,
	})
	if err != nil {
		r.failf("restart coordinator: %v", err)
		return r
	}
	defer coord2.Close()
	var ln2 net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			r.failf("rebinding %s: %v", addr, err)
			return r
		}
		time.Sleep(10 * time.Millisecond)
	}
	go func() { _ = coord2.Serve(ln2) }()

	n, err := coord2.Recover(pending)
	if err != nil {
		r.failf("recover: %v", err)
		return r
	}
	if n != len(pending) {
		r.failf("recovered %d of %d pending tasks", n, len(pending))
		return r
	}
	r.notef("replayed %d journaled tasks", n)

	// Drain the sweep through the restarted coordinator: replayed IDs are
	// awaited directly (preserved across the crash); tasks that committed
	// pre-crash are gone from memory and resubmitted — the surviving disk
	// cache must answer those without recompute.
	replayed, rehit := 0, 0
	cells := make([][]byte, len(specs))
	for i, id := range ids {
		snap, err := coord2.Wait(ctx, id)
		if errors.Is(err, fabric.ErrUnknownTask) {
			t, serr := coord2.Submit(specs[i])
			if serr != nil {
				r.failf("resubmit %d: %v", i, serr)
				return r
			}
			snap, err = coord2.Wait(ctx, t.ID)
			if err == nil && snap.RemoteHit {
				rehit++
			}
		} else if err == nil && snap.Replayed {
			replayed++
		}
		if err != nil {
			r.failf("awaiting cell %d: %v", i, err)
			return r
		}
		if snap.State != jobs.StateDone {
			r.failf("cell %d ended %s: %v", i, snap.State, snap.Err)
			return r
		}
		cells[i] = snap.Data
	}
	if replayed == 0 {
		r.failf("no awaited task carried the replayed marker")
	}
	if rehit == 0 {
		r.failf("no pre-crash result was answered from the surviving disk cache")
	}
	r.notef("%d tasks recomputed after replay, %d pre-crash results served from disk cache", replayed, rehit)

	fp := fabric.Fingerprint(cells)
	if fp != refFP {
		r.failf("recovered fingerprint %s != single-node %s", fp, refFP)
	}
	if committedFP != "" && fp != committedFP {
		r.failf("recovered fingerprint %s != committed %s", fp, committedFP)
	}
	m := coord2.Metrics()
	if m.Duplicates != 0 {
		r.failf("restarted coordinator committed duplicates: %d suppressed results with hedging disabled", m.Duplicates)
	}
	if jm, ok := coord2.JournalMetrics(); !ok {
		r.failf("restarted coordinator reports no journal")
	} else if jm.OpenJobs != 0 {
		r.failf("journal invariant: %d jobs still open after the sweep drained", jm.OpenJobs)
	}
	r.notef("fingerprint %s matches reference", fp)
	return r
}

// wireConn is the harness's raw frame connection for impersonating workers.
type wireConn struct {
	c  net.Conn
	sc *bufio.Scanner
}

func dialWire(addr string) (*wireConn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 64<<10), maxWireFrame)
	return &wireConn{c: c, sc: sc}, nil
}

func (wc *wireConn) write(f fabric.Frame) error {
	buf, err := fabric.EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = wc.c.Write(buf)
	return err
}

func (wc *wireConn) read() (fabric.Frame, error) {
	if !wc.sc.Scan() {
		if err := wc.sc.Err(); err != nil {
			return fabric.Frame{}, err
		}
		return fabric.Frame{}, fmt.Errorf("connection closed")
	}
	return fabric.DecodeFrame(wc.sc.Bytes())
}

// scenarioZombie partitions a worker holding a dispatched shard, lets a
// replacement registration take its name (new epoch), then heals the
// partition and replays the zombie's result — stamped with the superseded
// epoch and carrying deliberately wrong bytes. The fence must reject it; the
// shard must commit exactly once, from the current epoch, with correct data.
func scenarioZombie(o fabricChaosOptions, specs []core.Spec) (r scenarioResult) {
	coord, err := fabric.NewCoordinator(fabric.CoordConfig{
		HedgeDelay: -1,
		// Generous timeout: the partition is explicit, not heartbeat-driven.
		HeartbeatTimeout: 60 * time.Second,
	})
	if err != nil {
		r.failf("coordinator: %v", err)
		return r
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.failf("listener: %v", err)
		return r
	}
	go func() { _ = coord.Serve(ln) }()
	addr := ln.Addr().String()

	spec := specs[0]
	correct, err := canonicalCell(spec)
	if err != nil {
		r.failf("computing reference cell: %v", err)
		return r
	}
	// The poison payload decodes as a perfectly valid canonical outcome —
	// of a different cell. Nothing on the result path checks content
	// against the shard hash (workers are trusted); only the epoch fence
	// stands between this and a corrupted merge.
	poison, err := canonicalCell(specs[1])
	if err != nil {
		r.failf("computing poison cell: %v", err)
		return r
	}

	zombie, err := dialWire(addr)
	if err != nil {
		r.failf("zombie dial: %v", err)
		return r
	}
	defer zombie.c.Close()
	if err := zombie.write(fabric.Frame{Kind: fabric.KindHello, Worker: "chaos-z", Slots: 1}); err != nil {
		r.failf("zombie hello: %v", err)
		return r
	}
	ack, err := zombie.read()
	if err != nil || ack.Kind != fabric.KindHelloAck {
		r.failf("zombie ack: %v (kind %q)", err, ack.Kind)
		return r
	}
	e1 := ack.Epoch

	task, err := coord.Submit(spec)
	if err != nil {
		r.failf("submit: %v", err)
		return r
	}
	disp, err := zombie.read()
	if err != nil || disp.Kind != fabric.KindDispatch {
		r.failf("zombie dispatch: %v (kind %q)", err, disp.Kind)
		return r
	}
	// Partition: the zombie holds the shard and goes silent.

	replacement, err := dialWire(addr)
	if err != nil {
		r.failf("replacement dial: %v", err)
		return r
	}
	defer replacement.c.Close()
	if err := replacement.write(fabric.Frame{Kind: fabric.KindHello, Worker: "chaos-z", Slots: 1}); err != nil {
		r.failf("replacement hello: %v", err)
		return r
	}
	ack2, err := replacement.read()
	if err != nil || ack2.Kind != fabric.KindHelloAck {
		r.failf("replacement ack: %v (kind %q)", err, ack2.Kind)
		return r
	}
	e2 := ack2.Epoch
	if e2 <= e1 {
		r.failf("replacement epoch %d is not newer than zombie epoch %d", e2, e1)
		return r
	}
	redisp, err := replacement.read()
	if err != nil || redisp.Kind != fabric.KindDispatch || redisp.Shard != disp.Shard {
		r.failf("replacement re-dispatch: %v (kind %q shard %q, want %q)", err, redisp.Kind, redisp.Shard, disp.Shard)
		return r
	}
	r.notef("zombie epoch %d superseded by %d; shard re-dispatched", e1, e2)

	// Heal: the zombie's stale result arrives (over the replacement's
	// healed path) stamped with the superseded epoch and poisoned data.
	stale := fabric.Frame{
		Kind: fabric.KindResult, Worker: "chaos-z", Epoch: e1,
		Shard: disp.Shard, Data: poison,
	}
	if err := replacement.write(stale); err != nil {
		r.failf("writing stale result: %v", err)
		return r
	}
	fenceDeadline := time.Now().Add(5 * time.Second)
	for coord.Metrics().StaleEpochFrames == 0 {
		if time.Now().After(fenceDeadline) {
			r.failf("stale-epoch frame was never counted as rejected")
			return r
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap, err := coord.Get(task.ID); err != nil {
		r.failf("task lookup after stale frame: %v", err)
		return r
	} else if snap.State.Terminal() {
		r.failf("stale-epoch result committed the shard (state %s)", snap.State)
		return r
	}
	r.notef("stale-epoch result rejected; shard still in flight")

	// The current epoch commits the real result.
	good := fabric.Frame{
		Kind: fabric.KindResult, Worker: "chaos-z", Epoch: e2,
		Shard: disp.Shard, Data: correct,
	}
	if err := replacement.write(good); err != nil {
		r.failf("writing good result: %v", err)
		return r
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := coord.Wait(ctx, task.ID)
	if err != nil {
		r.failf("awaiting task: %v", err)
		return r
	}
	if snap.State != jobs.StateDone {
		r.failf("task ended %s: %v", snap.State, snap.Err)
		return r
	}
	if string(snap.Data) != string(correct) {
		r.failf("committed bytes are not the correct cell (%d bytes vs %d)", len(snap.Data), len(correct))
	}
	m := coord.Metrics()
	if m.ShardsCompleted != 1 {
		r.failf("expected exactly 1 shard commit, got %d", m.ShardsCompleted)
	}
	if m.Duplicates != 0 {
		r.failf("expected 0 duplicate commits, got %d", m.Duplicates)
	}
	if m.StaleEpochFrames == 0 {
		r.failf("stale-epoch counter is zero")
	}
	r.notef("correct-epoch result committed once (stale frames rejected: %d)", m.StaleEpochFrames)
	return r
}

// delayPipe scans wire frames from src and forwards each to dst after a
// seeded 0–8ms delay; because each frame waits independently, later frames
// routinely overtake earlier ones — deterministic, adversarial reordering
// at the transport the protocol must tolerate.
func delayPipe(src, dst net.Conn, seed int64, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(seed))
	var wmu sync.Mutex
	var frames sync.WaitGroup
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64<<10), maxWireFrame)
	for sc.Scan() {
		line := append(append([]byte{}, sc.Bytes()...), '\n')
		delay := time.Duration(rng.Int63n(int64(8 * time.Millisecond)))
		frames.Add(1)
		time.AfterFunc(delay, func() {
			defer frames.Done()
			wmu.Lock()
			defer wmu.Unlock()
			_, _ = dst.Write(line)
		})
	}
	frames.Wait()
	_ = dst.Close()
	_ = src.Close()
}

// startReorderProxy listens on loopback and forwards each accepted
// connection to target with per-frame delays in both directions.
func startReorderProxy(target string, seed int64) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() {
		for connSeed := seed; ; connSeed += 2 {
			cli, err := ln.Accept()
			if err != nil {
				return
			}
			srv, err := net.DialTimeout("tcp", target, 5*time.Second)
			if err != nil {
				_ = cli.Close()
				continue
			}
			var wg sync.WaitGroup
			wg.Add(2)
			go delayPipe(cli, srv, connSeed, &wg)
			go delayPipe(srv, cli, connSeed+1, &wg)
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close() }, nil
}

// scenarioReorder runs the full matrix with every worker connected through
// the frame-delaying proxy, with hedging enabled so duplicate results race
// commits. First-result-wins plus duplicate suppression must keep the merge
// exact no matter how frames interleave.
func scenarioReorder(o fabricChaosOptions, specs []core.Spec, refFP string) (r scenarioResult) {
	coord, err := fabric.NewCoordinator(fabric.CoordConfig{
		HedgeDelay:       100 * time.Millisecond,
		HeartbeatTimeout: 3 * time.Second,
		RetryBackoff:     25 * time.Millisecond,
	})
	if err != nil {
		r.failf("coordinator: %v", err)
		return r
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.failf("listener: %v", err)
		return r
	}
	go func() { _ = coord.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	var workers []*chaosWorker
	defer func() { stopChaosWorkers(workers) }()
	for i := 0; i < o.nodes; i++ {
		proxyAddr, stop, err := startReorderProxy(ln.Addr().String(), int64(o.seed)+int64(i)*1000)
		if err != nil {
			r.failf("proxy %d: %v", i, err)
			return r
		}
		stops = append(stops, stop)
		ws, err := startChaosWorkers(ctx, 1, proxyAddr, nil)
		workers = append(workers, ws...)
		if err != nil {
			r.failf("worker %d: %v", i, err)
			return r
		}
	}

	cells, err := coord.CellBytes(ctx, specs)
	if err != nil {
		r.failf("sweep: %v", err)
		return r
	}
	fp := fabric.Fingerprint(cells)
	if fp != refFP {
		r.failf("fingerprint %s != single-node %s under frame reordering", fp, refFP)
	}
	m := coord.Metrics()
	if m.ShardsFailed != 0 {
		r.failf("%d shards failed under reordering", m.ShardsFailed)
	}
	r.notef("fingerprint held under 0–8ms frame delays (hedges=%d duplicates suppressed=%d)",
		m.HedgesFired, m.Duplicates)
	return r
}

// killableProxy forwards TCP bytes to a target until Kill, which drops the
// listener and every open connection at once — the remote-cache-tier outage.
type killableProxy struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
	dead  bool
}

func startKillableProxy(target string) (*killableProxy, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	p := &killableProxy{ln: ln}
	go func() {
		for {
			cli, err := ln.Accept()
			if err != nil {
				return
			}
			srv, err := net.DialTimeout("tcp", target, 5*time.Second)
			if err != nil {
				_ = cli.Close()
				continue
			}
			p.mu.Lock()
			if p.dead {
				p.mu.Unlock()
				_ = cli.Close()
				_ = srv.Close()
				return
			}
			p.conns = append(p.conns, cli, srv)
			p.mu.Unlock()
			go func() { _, _ = io.Copy(srv, cli); _ = srv.Close() }()
			go func() { _, _ = io.Copy(cli, srv); _ = cli.Close() }()
		}
	}()
	return p, ln.Addr().String(), nil
}

func (p *killableProxy) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return
	}
	p.dead = true
	_ = p.ln.Close()
	for _, c := range p.conns {
		_ = c.Close()
	}
}

// scenarioCacheOutage kills the shared remote-cache tier mid-sweep. Workers
// must degrade lookups and fills to local-only (counted transport errors,
// no stalls beyond the configured timeout) and the merge must stay exact.
func scenarioCacheOutage(o fabricChaosOptions, specs []core.Spec, refFP string) (r scenarioResult) {
	coord, err := fabric.NewCoordinator(fabric.CoordConfig{
		HedgeDelay:       -1,
		HeartbeatTimeout: 3 * time.Second,
		RetryBackoff:     25 * time.Millisecond,
	})
	if err != nil {
		r.failf("coordinator: %v", err)
		return r
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.failf("fabric listener: %v", err)
		return r
	}
	go func() { _ = coord.Serve(ln) }()

	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.failf("http listener: %v", err)
		return r
	}
	hsrv := &http.Server{Handler: fabric.NewHTTP(coord, fabric.HTTPOptions{})}
	go func() { _ = hsrv.Serve(hln) }()
	defer hsrv.Close()

	proxy, proxyAddr, err := startKillableProxy(hln.Addr().String())
	if err != nil {
		r.failf("cache proxy: %v", err)
		return r
	}
	defer proxy.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var remotes []*fabric.RemoteCache
	workers, err := startChaosWorkers(ctx, o.nodes, ln.Addr().String(), func(i int) (jobs.CacheTier, error) {
		local, err := jobs.NewCache(1024, "")
		if err != nil {
			return nil, err
		}
		remote := fabric.NewRemoteCacheWith("http://"+proxyAddr, fabric.RemoteCacheOptions{
			Timeout: 500 * time.Millisecond,
		})
		remotes = append(remotes, remote)
		return jobs.NewTieredCache(local, remote), nil
	})
	defer stopChaosWorkers(workers)
	if err != nil {
		r.failf("workers: %v", err)
		return r
	}

	done := make(chan struct{})
	var cells [][]byte
	var sweepErr error
	go func() {
		cells, sweepErr = coord.CellBytes(ctx, specs)
		close(done)
	}()
	threshold := uint64(len(specs) / 3)
	if threshold == 0 {
		threshold = 1
	}
	outageDeadline := time.Now().Add(2 * time.Minute)
	for coord.Metrics().ShardsCompleted < threshold {
		if time.Now().After(outageDeadline) {
			r.failf("sweep never reached %d committed shards", threshold)
			return r
		}
		time.Sleep(2 * time.Millisecond)
	}
	proxy.Kill()
	r.notef("remote cache tier killed after %d/%d shards", coord.Metrics().ShardsCompleted, len(specs))

	<-done
	if sweepErr != nil {
		r.failf("sweep after outage: %v", sweepErr)
		return r
	}
	fp := fabric.Fingerprint(cells)
	if fp != refFP {
		r.failf("fingerprint %s != single-node %s after cache outage", fp, refFP)
	}
	var tierErrs uint64
	for _, rc := range remotes {
		tierErrs += rc.TierErrors()
	}
	if tierErrs == 0 {
		r.failf("no remote-tier transport errors recorded — the outage never bit")
	}
	r.notef("fingerprint held; %d remote-tier errors degraded to local compute", tierErrs)
	return r
}
