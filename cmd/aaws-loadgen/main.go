// Command aaws-loadgen generates deterministic multi-tenant traffic against
// an aaws-serve instance and reports per-tenant service quality: latency
// percentiles (p50/p99/p999), shed and rate-limit counts, cache-hit rate,
// and Jain's fairness index. Its job mixes cover interactive singles, batch
// sweeps, cache-hot replays, and adversarial cache-miss floods.
//
// The corpus is fully determined by -seed and -scenario, so two runs against
// differently configured servers submit identical work and their JSON
// reports are comparable line for line. That is the point: the bundled
// "adversarial" scenario run once against -qos wfq and once against
// -qos fifo is the acceptance demonstration that weighted-fair scheduling
// plus per-tenant cache quotas isolate a victim tenant from a flood (see
// examples/qos-overload/).
//
// Usage:
//
//	aaws-loadgen -addr http://localhost:8080 -scenario mixed -duration 30s -out report.json
//
//	# Self-contained: boot an in-process server on a loopback port and
//	# drive it, no external process needed (the CI soak mode):
//	aaws-loadgen -self -self-qos wfq -scenario adversarial -duration 20s -check
//
// With -check, invariant violations (transport errors, accepted jobs that
// never resolve, accounting mismatches, goroutine leaks in self mode) exit
// nonzero. Latency/shed budgets (-budget-p99-ms, -budget-shed) only warn:
// they are regression telemetry, not gates.
//
// With -target-coord the same scenarios drive a fabric coordinator
// (aaws-coord) instead of a single server: the run is labeled "fabric" and
// the report gains a remote_cache section with the shared result tier's
// hit/miss split scraped from the coordinator's /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"aaws/internal/jobs"
)

func main() {
	addr := flag.String("addr", "", "target server base URL (e.g. http://localhost:8080); mutually exclusive with -self")
	targetCoord := flag.String("target-coord", "", "fabric coordinator base URL (e.g. http://localhost:8090): like -addr, but labels the run \"fabric\" and reports the shared remote-cache hit rate from coordinator metrics")
	self := flag.Bool("self", false, "boot an in-process server on a loopback port and drive it")
	selfQoS := flag.String("self-qos", "wfq", "self-server queue policy: wfq (weighted-fair + tenant cache quotas) or fifo (legacy, no quotas)")
	selfWorkers := flag.Int("self-workers", 1, "self-server worker pool size")
	selfQueue := flag.Int("self-queue", 48, "self-server queue depth")
	selfTenantDepth := flag.Int("self-max-queue-per-tenant", 24, "self-server per-tenant queue quota")
	selfMaxWait := flag.Duration("self-max-wait", 250*time.Millisecond, "self-server queue-deadline shed ceiling")
	selfCache := flag.Int("self-cache-entries", 64, "self-server result-cache capacity (tenant quota = a quarter of it under wfq)")
	scenarioName := flag.String("scenario", "mixed", "traffic scenario: "+scenarioNames())
	seed := flag.Int64("seed", 1, "corpus seed (same seed + scenario = identical submissions)")
	duration := flag.Duration("duration", 30*time.Second, "submission window")
	grace := flag.Duration("grace", 15*time.Second, "drain grace for accepted jobs after the window closes")
	out := flag.String("out", "", "JSON report path (default stdout)")
	policyLabel := flag.String("policy-label", "", "qos_policy label for the report when driving an external server")
	check := flag.Bool("check", false, "exit 1 on invariant violations")
	elastic := flag.Bool("elastic", false, "submit every job and sweep with elastic work-stealing enabled")
	budgetP99 := flag.Float64("budget-p99-ms", 0, "warn when a protected tenant's p99 exceeds this (ms, 0 = off)")
	budgetShed := flag.Float64("budget-shed", -1, "warn when a protected tenant's shed rate exceeds this (fraction, <0 = off)")
	flag.Parse()
	elasticJobs = *elastic

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc, ok := scenarios[*scenarioName]
	if !ok {
		fail(fmt.Errorf("aaws-loadgen: unknown scenario %q (have: %s)", *scenarioName, scenarioNames()))
	}
	modes := 0
	for _, on := range []bool{*self, *addr != "", *targetCoord != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fail(fmt.Errorf("aaws-loadgen: exactly one of -addr, -target-coord, or -self required"))
	}

	goroutineBaseline := runtime.NumGoroutine()
	target := *addr
	policy := *policyLabel
	var shutdownSelf func() error
	switch {
	case *self:
		var err error
		target, shutdownSelf, err = bootSelf(*selfQoS, *selfWorkers, *selfQueue, *selfTenantDepth, *selfMaxWait, *selfCache)
		if err != nil {
			fail(err)
		}
		policy = *selfQoS
	case *targetCoord != "":
		// The coordinator speaks the same /v1/jobs API subset, so the
		// scenario machinery drives it unchanged.
		target = *targetCoord
		if policy == "" {
			policy = "fabric"
		}
	}
	if policy == "" {
		policy = "unknown"
	}

	cl := newClient(target)
	if err := cl.probe(); err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "aaws-loadgen: driving %s scenario=%s seed=%d for %s\n", target, sc.Name, *seed, *duration)
	col := newCollector()
	runScenario(cl, sc, *seed, *duration, *grace, col)

	rep := buildReport(col, sc, *seed, *duration, target, policy)
	if *targetCoord != "" {
		rc, err := scrapeRemoteCache(target)
		if err != nil {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("coordinator metrics scrape: %v", err))
		} else {
			rep.RemoteCache = rc
		}
	}
	rep.checkBudgets(sc, *budgetP99, *budgetShed)
	rep.checkInvariants()

	if shutdownSelf != nil {
		if err := shutdownSelf(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("self-server shutdown: %v", err))
		}
		// Goroutine-leak invariant: after a full drain the in-process
		// server and every watcher must be gone (small slack for the HTTP
		// client's idle pool and runtime background goroutines).
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > goroutineBaseline+8 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > goroutineBaseline+8 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"goroutine leak: %d alive after drain (baseline %d)", n, goroutineBaseline))
		}
	}

	rep.summarize()
	if err := rep.write(*out); err != nil {
		fail(err)
	}
	if *check && len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "aaws-loadgen: %d invariant violation(s)\n", len(rep.Violations))
		os.Exit(1)
	}
}

// bootSelf stands up a full server stack (cache, executor, HTTP API) on a
// loopback port. "wfq" gets the QoS stack: weighted-fair scheduling,
// per-tenant queue quota, and tenant cache quotas at a quarter of capacity.
// "fifo" is the legacy configuration those features replaced — same workers,
// queue bound, and shed ceiling, but one global queue and an unpartitioned
// cache — so an A/B pair of runs isolates the QoS layer's effect.
func bootSelf(qos string, workers, queueDepth, tenantDepth int, maxWait time.Duration, cacheEntries int) (string, func() error, error) {
	cache, err := jobs.NewCache(cacheEntries, "")
	if err != nil {
		return "", nil, err
	}
	cfg := jobs.Config{
		Workers:        workers,
		QueueDepth:     queueDepth,
		DefaultTimeout: time.Minute,
		Admission: jobs.AdmissionConfig{
			MaxWait: maxWait,
		},
		Cache: cache,
	}
	switch qos {
	case "wfq":
		cfg.QoS = jobs.QoSConfig{Policy: jobs.PolicyWFQ}
		cfg.Admission.PerTenantDepth = tenantDepth
		quota := cacheEntries / 4
		if quota < 1 {
			quota = 1
		}
		cache.SetTenantQuotas(0, quota)
	case "fifo":
		cfg.QoS = jobs.QoSConfig{Policy: jobs.PolicyFIFO}
	default:
		return "", nil, fmt.Errorf("aaws-loadgen: -self-qos must be wfq or fifo, got %q", qos)
	}
	ex := jobs.NewExecutor(cfg)
	srv := &http.Server{Handler: jobs.NewServer(ex)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ex.Close()
		return "", nil, err
	}
	go srv.Serve(ln)
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr := ex.Drain(ctx)
		ex.Close()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return drainErr
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
