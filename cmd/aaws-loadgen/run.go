package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// The traffic engine: one pacer goroutine per tenant draws requests from the
// tenant's deterministic corpus and fires them at the target server; a
// bounded set of watcher goroutines polls accepted jobs to completion so
// latency is measured submit → terminal state, not submit → 202.

// outcome is what happened to one generated request.
type outcome struct {
	tenant    string
	kind      reqKind
	accepted  bool // 202 (queued) or 200 (immediate)
	cacheHit  bool
	completed bool
	shed      bool // 503 (overloaded / draining)
	limited   bool // 429 rate limited
	rejected  bool // 429 queue full (reported alongside limited)
	errored   bool // transport error, unexpected status, decode failure
	latency   time.Duration
}

// collector accumulates outcomes per tenant.
type collector struct {
	mu sync.Mutex
	by map[string]*tenantTally
}

type tenantTally struct {
	requests, accepted, completed, cacheHits  int
	shed, limited, errors, sweeps, unresolved int
	latenciesMs                               []float64
}

func newCollector() *collector { return &collector{by: make(map[string]*tenantTally)} }

func (c *collector) add(o outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.by[o.tenant]
	if t == nil {
		t = &tenantTally{}
		c.by[o.tenant] = t
	}
	t.requests++
	if o.kind == kindSweep {
		t.sweeps++
	}
	switch {
	case o.errored:
		t.errors++
	case o.shed:
		t.shed++
	case o.limited || o.rejected:
		t.limited++
	case o.accepted:
		t.accepted++
		if o.cacheHit {
			t.cacheHits++
		}
		if o.completed {
			t.completed++
			t.latenciesMs = append(t.latenciesMs, float64(o.latency)/float64(time.Millisecond))
		} else {
			t.unresolved++
		}
	default:
		t.errors++
	}
}

// client drives one server.
type client struct {
	base string
	http *http.Client
}

func newClient(base string) *client {
	return &client{
		base: base,
		http: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 256, // pollers reuse connections instead of piling up sockets
			},
		},
	}
}

type jobStatusLite struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
}

type sweepRespLite struct {
	IDs []string `json:"ids"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

// post sends one JSON body with the tenant identity header.
func (cl *client) post(ctx context.Context, path, tenant string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.base+path, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-AAWS-Client", tenant)
	return cl.http.Do(req)
}

// await polls a job until terminal or ctx expires.
func (cl *client) await(ctx context.Context, id string) bool {
	interval := 10 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.base+"/v1/jobs/"+id, nil)
		if err != nil {
			return false
		}
		resp, err := cl.http.Do(req)
		if err != nil {
			return false
		}
		var st jobStatusLite
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && terminal(st.State) {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(interval):
		}
		if interval < 100*time.Millisecond {
			interval *= 2
		}
	}
}

// elasticJobs, set by the -elastic flag, adds elastic work-stealing to
// every generated submission (single jobs and sweeps alike).
var elasticJobs bool

// jobBody builds the submission body for a single-job request.
func jobBody(r genRequest) map[string]any {
	body := map[string]any{
		"kernel":  "cilksort",
		"variant": "base+psm",
		"seed":    r.Seed,
		"scale":   1.0,
	}
	if elasticJobs {
		body["elastic"] = true
	}
	return body
}

// fire executes one generated request end to end and reports its outcome.
func (cl *client) fire(ctx context.Context, tenant string, r genRequest, col *collector) {
	start := time.Now()
	o := outcome{tenant: tenant, kind: r.Kind}
	defer func() { col.add(o) }()

	var resp *http.Response
	var err error
	if r.Kind == kindSweep {
		names := r.SweepKernels
		if len(names) == 0 {
			names = []string{"cilksort"}
		}
		sweep := map[string]any{
			"kernels": names,
			"seeds":   r.SweepSeeds,
			"scale":   1.0,
		}
		if elasticJobs {
			sweep["elastic"] = true
		}
		resp, err = cl.post(ctx, "/v1/sweeps", tenant, sweep)
	} else {
		resp, err = cl.post(ctx, "/v1/jobs", tenant, jobBody(r))
	}
	if err != nil {
		o.errored = ctx.Err() == nil // shutdown-canceled submits are not server errors
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusServiceUnavailable:
		o.shed = true
		return
	case http.StatusTooManyRequests:
		o.limited = true
		return
	case http.StatusOK, http.StatusAccepted:
	default:
		o.errored = true
		return
	}
	o.accepted = true

	if r.Kind == kindSweep {
		var sr sweepRespLite
		if json.Unmarshal(body, &sr) != nil || len(sr.IDs) == 0 {
			o.errored = true
			return
		}
		for _, id := range sr.IDs {
			if !cl.await(ctx, id) {
				return // unresolved: counted against the invariant check
			}
		}
		o.completed = true
		o.latency = time.Since(start)
		return
	}

	var st jobStatusLite
	if json.Unmarshal(body, &st) != nil || st.ID == "" {
		o.errored = true
		return
	}
	o.cacheHit = st.CacheHit
	if terminal(st.State) || cl.await(ctx, st.ID) {
		o.completed = true
		o.latency = time.Since(start)
	}
}

// runScenario drives every tenant's load against the target for duration,
// then grants a drain grace period for in-flight jobs to resolve.
func runScenario(cl *client, sc scenario, runSeed int64, duration, grace time.Duration, col *collector) {
	// Submission window.
	subCtx, cancelSub := context.WithTimeout(context.Background(), duration)
	defer cancelSub()
	// Watchers outlive the window so accepted jobs can resolve.
	watchCtx, cancelWatch := context.WithTimeout(context.Background(), duration+grace)
	defer cancelWatch()

	var wg sync.WaitGroup
	for _, load := range sc.Tenants {
		load := load
		wg.Add(1)
		go func() {
			defer wg.Done()
			crp := newCorpus(runSeed, load)
			var inner sync.WaitGroup
			if load.OpenQPS > 0 {
				// Open loop: fixed pacing, fire-and-watch. The corpus is
				// drawn in the pacer (deterministic order), the request
				// runs in its own goroutine.
				tick := time.NewTicker(time.Duration(float64(time.Second) / load.OpenQPS))
				defer tick.Stop()
				for {
					select {
					case <-subCtx.Done():
						inner.Wait()
						return
					case <-tick.C:
						r := crp.next()
						inner.Add(1)
						go func() {
							defer inner.Done()
							cl.fire(watchCtx, load.Name, r, col)
						}()
					}
				}
			}
			// Closed loop: each worker submits, waits, repeats.
			workers := load.Closed
			if workers < 1 {
				workers = 1
			}
			var mu sync.Mutex // serialize corpus draws across workers
			for w := 0; w < workers; w++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					for subCtx.Err() == nil {
						mu.Lock()
						r := crp.next()
						mu.Unlock()
						cl.fire(watchCtx, load.Name, r, col)
					}
				}()
			}
			inner.Wait()
		}()
	}
	wg.Wait()
}

// probe checks the target answers /healthz before traffic starts.
func (cl *client) probe() error {
	resp, err := cl.http.Get(cl.base + "/healthz")
	if err != nil {
		return fmt.Errorf("aaws-loadgen: target %s unreachable: %w", cl.base, err)
	}
	resp.Body.Close()
	return nil
}
