package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Report is the run artifact: one JSON document whose shape is stable across
// runs, so two reports (e.g. wfq vs fifo over the same scenario and seed)
// diff meaningfully.
type Report struct {
	Tool      string  `json:"tool"`
	Scenario  string  `json:"scenario"`
	Seed      int64   `json:"seed"`
	DurationS float64 `json:"duration_s"`
	Target    string  `json:"target"`
	// QoSPolicy labels the server configuration under test ("wfq", "fifo",
	// or "unknown" when driving an external server without -policy-label).
	QoSPolicy string `json:"qos_policy"`

	Tenants map[string]TenantReport `json:"tenants"`
	// RemoteCache is the coordinator's shared result-tier effectiveness over
	// the whole run (fabric targets only, scraped from /metrics).
	RemoteCache *RemoteCacheReport `json:"remote_cache,omitempty"`
	// FairnessIndex is Jain's index over per-tenant completed throughput:
	// 1.0 = perfectly equal service, 1/n = one tenant got everything.
	FairnessIndex float64 `json:"fairness_index"`

	Warnings   []string `json:"warnings,omitempty"`
	Violations []string `json:"violations,omitempty"`
}

// TenantReport is one tenant's service summary.
type TenantReport struct {
	Requests    int     `json:"requests"`
	Accepted    int     `json:"accepted"`
	Completed   int     `json:"completed"`
	Unresolved  int     `json:"unresolved"` // accepted but not terminal before the drain grace expired
	CacheHits   int     `json:"cache_hits"`
	Shed        int     `json:"shed"`         // 503 overload rejections
	RateLimited int     `json:"rate_limited"` // 429s (token bucket or queue quota)
	Errors      int     `json:"errors"`
	Sweeps      int     `json:"sweeps"`
	ShedRate    float64 `json:"shed_rate"`
	CacheHitPct float64 `json:"cache_hit_rate"`
	Throughput  float64 `json:"throughput_rps"` // completed per second

	LatencyMs LatencySummary `json:"latency_ms"`
}

// LatencySummary is the completed-request latency distribution.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// RemoteCacheReport is the fabric shared tier's hit/miss split, from the
// coordinator's aaws_fabric_remote_cache_* counters.
type RemoteCacheReport struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// scrapeRemoteCache reads the coordinator's Prometheus text exposition and
// folds the shared-tier counters into a RemoteCacheReport.
func scrapeRemoteCache(base string) (*RemoteCacheReport, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	rc := &RemoteCacheReport{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		name, value, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !ok || strings.HasPrefix(name, "#") {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		switch name {
		case "aaws_fabric_remote_cache_hits_total":
			rc.Hits = uint64(v)
		case "aaws_fabric_remote_cache_misses_total":
			rc.Misses = uint64(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if total := rc.Hits + rc.Misses; total > 0 {
		rc.HitRate = round(float64(rc.Hits) / float64(total))
	}
	return rc, nil
}

// percentile returns the p-th percentile (0..100) of sorted samples by
// nearest-rank; 0 for an empty set.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// jainIndex is Jain's fairness index over the given allocations:
// (Σx)² / (n·Σx²), in (0,1], 1 = perfectly fair.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

func round(v float64) float64 { return math.Round(v*1000) / 1000 }

// buildReport folds the collector into the artifact.
func buildReport(col *collector, sc scenario, seed int64, duration time.Duration, target, policy string) *Report {
	rep := &Report{
		Tool:      "aaws-loadgen",
		Scenario:  sc.Name,
		Seed:      seed,
		DurationS: duration.Seconds(),
		Target:    target,
		QoSPolicy: policy,
		Tenants:   make(map[string]TenantReport, len(col.by)),
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	var completions []float64
	for name, t := range col.by {
		sort.Float64s(t.latenciesMs)
		tr := TenantReport{
			Requests:    t.requests,
			Accepted:    t.accepted,
			Completed:   t.completed,
			Unresolved:  t.unresolved,
			CacheHits:   t.cacheHits,
			Shed:        t.shed,
			RateLimited: t.limited,
			Errors:      t.errors,
			Sweeps:      t.sweeps,
			Throughput:  round(float64(t.completed) / duration.Seconds()),
			LatencyMs: LatencySummary{
				P50:  round(percentile(t.latenciesMs, 50)),
				P90:  round(percentile(t.latenciesMs, 90)),
				P99:  round(percentile(t.latenciesMs, 99)),
				P999: round(percentile(t.latenciesMs, 99.9)),
				Max:  round(percentile(t.latenciesMs, 100)),
			},
		}
		if t.requests > 0 {
			tr.ShedRate = round(float64(t.shed) / float64(t.requests))
		}
		if t.accepted > 0 {
			tr.CacheHitPct = round(float64(t.cacheHits) / float64(t.accepted))
		}
		rep.Tenants[name] = tr
		completions = append(completions, float64(t.completed))
	}
	rep.FairnessIndex = round(jainIndex(completions))
	return rep
}

// checkBudgets appends warn-only budget breaches for protected tenants.
func (rep *Report) checkBudgets(sc scenario, budgetP99Ms, budgetShed float64) {
	for _, load := range sc.Tenants {
		if !load.Protected {
			continue
		}
		tr, ok := rep.Tenants[load.Name]
		if !ok {
			continue
		}
		if budgetP99Ms > 0 && tr.LatencyMs.P99 > budgetP99Ms {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf(
				"tenant %s p99 %.1fms exceeds budget %.1fms", load.Name, tr.LatencyMs.P99, budgetP99Ms))
		}
		if budgetShed >= 0 && tr.ShedRate > budgetShed {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf(
				"tenant %s shed rate %.3f exceeds budget %.3f", load.Name, tr.ShedRate, budgetShed))
		}
	}
	sort.Strings(rep.Warnings)
}

// checkInvariants appends hard violations: transport/server errors and
// accepted jobs that never resolved. With -check these make the run exit 1.
func (rep *Report) checkInvariants() {
	names := make([]string, 0, len(rep.Tenants))
	for n := range rep.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tr := rep.Tenants[n]
		if tr.Errors > 0 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"tenant %s: %d transport/protocol errors", n, tr.Errors))
		}
		if tr.Unresolved > 0 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"tenant %s: %d accepted jobs never reached a terminal state", n, tr.Unresolved))
		}
		if got := tr.Accepted + tr.Shed + tr.RateLimited + tr.Errors; got != tr.Requests {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"tenant %s: outcome accounting %d != %d requests", n, got, tr.Requests))
		}
	}
}

// write emits the artifact: to path, or stdout when path is empty.
func (rep *Report) write(path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// summarize prints a human-oriented one-liner per tenant to stderr so CI
// logs are scannable without opening the JSON artifact.
func (rep *Report) summarize() {
	names := make([]string, 0, len(rep.Tenants))
	for n := range rep.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "aaws-loadgen: scenario=%s policy=%s fairness=%.3f\n",
		rep.Scenario, rep.QoSPolicy, rep.FairnessIndex)
	for _, n := range names {
		tr := rep.Tenants[n]
		fmt.Fprintf(os.Stderr,
			"  %-10s req=%-5d done=%-5d shed=%-4d 429=%-4d hit=%.2f p50=%.1fms p99=%.1fms p999=%.1fms\n",
			n, tr.Requests, tr.Completed, tr.Shed, tr.RateLimited, tr.CacheHitPct,
			tr.LatencyMs.P50, tr.LatencyMs.P99, tr.LatencyMs.P999)
	}
	if rc := rep.RemoteCache; rc != nil {
		fmt.Fprintf(os.Stderr, "  remote-cache hits=%d misses=%d hit_rate=%.3f\n",
			rc.Hits, rc.Misses, rc.HitRate)
	}
	for _, w := range rep.Warnings {
		fmt.Fprintf(os.Stderr, "  WARN: %s\n", w)
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "  VIOLATION: %s\n", v)
	}
}
