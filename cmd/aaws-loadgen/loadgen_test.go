package main

import (
	"math"
	"reflect"
	"testing"
	"time"

	"aaws/internal/kernels"
)

// TestCorpusDeterministic pins the comparability guarantee: the same
// (seed, tenant) produces an identical request sequence, a different seed a
// different one, and different tenants draw from disjoint seed spaces.
func TestCorpusDeterministic(t *testing.T) {
	load := scenarios["adversarial"].Tenants[1] // victim: hot + cold mix
	a := newCorpus(42, load)
	b := newCorpus(42, load)
	var seqA, seqB []genRequest
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.next())
		seqB = append(seqB, b.next())
	}
	if !reflect.DeepEqual(seqA, seqB) {
		t.Fatal("same seed and tenant produced different request sequences")
	}

	c := newCorpus(43, load)
	diverged := false
	for i := 0; i < 200; i++ {
		if !reflect.DeepEqual(c.next(), seqA[i]) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced an identical request sequence")
	}

	floodSeeds := map[uint64]bool{}
	flood := newCorpus(42, scenarios["adversarial"].Tenants[0])
	for i := 0; i < 500; i++ {
		r := flood.next()
		if r.Kind == kindCold && floodSeeds[r.Seed] {
			t.Fatalf("cold seed %d repeated (cache-miss floods must never hit)", r.Seed)
		}
		floodSeeds[r.Seed] = true
	}
	for _, r := range seqA {
		if floodSeeds[r.Seed] {
			t.Fatalf("victim seed %d collides with the flood's seed space", r.Seed)
		}
	}
}

// TestBatchSweepCorpus checks the gang-dispatch scenario's sweep matrices:
// every draw from the pure-sweep tenant is a sweep, widened to the
// configured kernel count, with names the server-side kernel registry will
// accept and no duplicate kernel within one matrix.
func TestBatchSweepCorpus(t *testing.T) {
	sc, ok := scenarios["batch-sweep"]
	if !ok {
		t.Fatal("batch-sweep scenario missing")
	}
	load := sc.Tenants[0] // sweeper-a: SweepFrac 1.0
	crp := newCorpus(42, load)
	for i := 0; i < 50; i++ {
		r := crp.next()
		if r.Kind != kindSweep {
			t.Fatalf("draw %d: kind = %s, want sweep (SweepFrac 1.0)", i, r.Kind)
		}
		if len(r.SweepKernels) != load.SweepKernels {
			t.Fatalf("draw %d: %d kernels, want %d", i, len(r.SweepKernels), load.SweepKernels)
		}
		seen := map[string]bool{}
		for _, name := range r.SweepKernels {
			if kernels.Get(name) == nil {
				t.Fatalf("draw %d: kernel %q not in the registry", i, name)
			}
			if seen[name] {
				t.Fatalf("draw %d: kernel %q repeated within one matrix", i, name)
			}
			seen[name] = true
		}
		if len(r.SweepSeeds) == 0 {
			t.Fatalf("draw %d: sweep without seeds", i)
		}
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{50, 5}, {90, 9}, {99, 10}, {100, 10}, {10, 1},
	}
	for _, c := range cases {
		if got := percentile(samples, c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := jainIndex([]float64{10, 10, 10, 10}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal allocations: index = %v, want 1", got)
	}
	if got := jainIndex([]float64{40, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("one tenant hogging: index = %v, want 0.25 (1/n)", got)
	}
	if got := jainIndex(nil); got != 1 {
		t.Errorf("no tenants: index = %v, want 1", got)
	}
}

// TestReportInvariantAccounting checks that dropped outcomes are caught: a
// tally whose categories do not sum to its request count is a violation.
func TestReportInvariantAccounting(t *testing.T) {
	col := newCollector()
	col.add(outcome{tenant: "a", accepted: true, completed: true, latency: 5 * time.Millisecond})
	col.add(outcome{tenant: "a", shed: true})
	col.add(outcome{tenant: "a", limited: true})
	col.add(outcome{tenant: "a", errored: true})
	col.add(outcome{tenant: "a", accepted: true}) // unresolved

	rep := buildReport(col, scenarios["adversarial"], 1, time.Second, "test", "wfq")
	rep.checkInvariants()

	want := map[string]bool{
		"errors":         false,
		"terminal state": false,
	}
	for _, v := range rep.Violations {
		for k := range want {
			if len(v) > 0 && containsSub(v, k) {
				want[k] = true
			}
		}
	}
	tr := rep.Tenants["a"]
	if tr.Requests != 5 || tr.Accepted != 2 || tr.Shed != 1 || tr.RateLimited != 1 || tr.Errors != 1 {
		t.Fatalf("tally = %+v", tr)
	}
	if !want["errors"] || !want["terminal state"] {
		t.Fatalf("violations %v missing errors/unresolved findings", rep.Violations)
	}
	// Accounting itself must balance for a well-formed tally.
	for _, v := range rep.Violations {
		if containsSub(v, "accounting") {
			t.Fatalf("unexpected accounting violation: %s", v)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
