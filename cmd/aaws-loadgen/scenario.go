package main

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
)

// A scenario is a named multi-tenant traffic shape: which tenants exist, how
// each one paces itself (open-loop QPS or closed-loop concurrency), and what
// mix of job kinds it submits. Scenarios are fully determined by the run
// seed, so two runs against different server configurations (e.g. -qos wfq
// vs -qos fifo) submit the same specs and their reports are comparable
// line for line.
type scenario struct {
	Name        string
	Description string
	Tenants     []tenantLoad
}

// tenantLoad is one tenant's traffic shape.
type tenantLoad struct {
	Name string
	// OpenQPS > 0 paces submissions open-loop at that rate regardless of
	// completions (the overload-generating mode); otherwise Closed workers
	// run closed-loop: submit, wait for the job to finish, repeat.
	OpenQPS float64
	Closed  int

	// Mix fractions (the remainder is interactive singles drawn from a
	// medium warm pool). HotFrac draws from a HotPool-sized replay set
	// (cache-hot); ColdFrac draws a never-repeated seed (cache-miss flood);
	// SweepFrac submits a small batch sweep matrix.
	HotFrac   float64
	ColdFrac  float64
	SweepFrac float64
	HotPool   int

	// Protected marks tenants whose latency/shed budgets matter (the
	// victims, not the floods): warn-only budget checks apply to them.
	Protected bool
}

// scenarios are the built-in traffic shapes.
var scenarios = map[string]scenario{
	"mixed": {
		Name:        "mixed",
		Description: "three tenants with realistic blended traffic: an interactive API tenant, a batch-sweep tenant, and a bursty ML tenant",
		Tenants: []tenantLoad{
			{Name: "team-api", OpenQPS: 25, HotFrac: 0.6, ColdFrac: 0.1, HotPool: 8, Protected: true},
			{Name: "team-batch", Closed: 2, SweepFrac: 0.4, ColdFrac: 0.6},
			{Name: "team-ml", OpenQPS: 10, HotFrac: 0.3, ColdFrac: 0.7, HotPool: 4},
		},
	},
	"adversarial": {
		Name:        "adversarial",
		Description: "a cache-miss flood (unique specs at high QPS) attacking a low-rate interactive victim replaying a small hot set — the QoS isolation acceptance scenario",
		Tenants: []tenantLoad{
			{Name: "flood", OpenQPS: 90, ColdFrac: 1.0},
			{Name: "victim", OpenQPS: 5, HotFrac: 0.8, ColdFrac: 0.2, HotPool: 4, Protected: true},
		},
	},
	"cache-hot": {
		Name:        "cache-hot",
		Description: "two tenants replaying small hot sets: measures steady-state cache behavior and fair sharing without overload",
		Tenants: []tenantLoad{
			{Name: "replay-a", OpenQPS: 40, HotFrac: 1.0, HotPool: 6, Protected: true},
			{Name: "replay-b", OpenQPS: 40, HotFrac: 1.0, HotPool: 6, Protected: true},
		},
	},
}

func scenarioNames() string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ---- deterministic corpus ----

// reqKind classifies one generated request.
type reqKind int

const (
	kindInteractive reqKind = iota // warm-pool single
	kindHot                        // hot-pool replay (cache-hot)
	kindCold                       // unique seed (cache miss)
	kindSweep                      // batch sweep matrix
)

func (k reqKind) String() string {
	switch k {
	case kindHot:
		return "hot"
	case kindCold:
		return "cold"
	case kindSweep:
		return "sweep"
	}
	return "interactive"
}

// genRequest is one request the corpus produced: a job submission (Seed set)
// or a sweep submission (SweepSeeds set).
type genRequest struct {
	Kind       reqKind
	Seed       uint64
	SweepSeeds []uint64
}

// corpus deterministically generates one tenant's request stream. Seeds are
// partitioned per tenant (FNV offset) so tenants never collide except by
// design, and the draw sequence depends only on (runSeed, tenant) — never on
// timing — so WFQ and FIFO runs replay identical work.
type corpus struct {
	load     tenantLoad
	rng      *rand.Rand
	base     uint64 // tenant seed-space offset
	coldNext uint64 // monotone unique-seed counter
}

func newCorpus(runSeed int64, load tenantLoad) *corpus {
	h := fnv.New64a()
	fmt.Fprint(h, load.Name)
	base := h.Sum64() &^ (1<<20 - 1) // tenant-sized seed partitions
	return &corpus{
		load: load,
		rng:  rand.New(rand.NewSource(runSeed ^ int64(h.Sum64()))),
		base: base,
	}
}

// next draws the tenant's next request.
func (c *corpus) next() genRequest {
	roll := c.rng.Float64()
	switch {
	case roll < c.load.HotFrac:
		pool := c.load.HotPool
		if pool < 1 {
			pool = 1
		}
		return genRequest{Kind: kindHot, Seed: c.base + uint64(c.rng.Intn(pool))}
	case roll < c.load.HotFrac+c.load.ColdFrac:
		c.coldNext++
		return genRequest{Kind: kindCold, Seed: c.base + 1<<19 + c.coldNext}
	case roll < c.load.HotFrac+c.load.ColdFrac+c.load.SweepFrac:
		// A small sweep matrix: 3 fresh cells per submission.
		seeds := make([]uint64, 3)
		for i := range seeds {
			c.coldNext++
			seeds[i] = c.base + 1<<19 + c.coldNext
		}
		return genRequest{Kind: kindSweep, SweepSeeds: seeds}
	default:
		// Interactive singles from a warm pool: repeats happen, but the
		// pool is wide enough that many submissions still simulate.
		return genRequest{Kind: kindInteractive, Seed: c.base + 1<<18 + uint64(c.rng.Intn(64))}
	}
}
