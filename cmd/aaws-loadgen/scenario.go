package main

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
)

// A scenario is a named multi-tenant traffic shape: which tenants exist, how
// each one paces itself (open-loop QPS or closed-loop concurrency), and what
// mix of job kinds it submits. Scenarios are fully determined by the run
// seed, so two runs against different server configurations (e.g. -qos wfq
// vs -qos fifo) submit the same specs and their reports are comparable
// line for line.
type scenario struct {
	Name        string
	Description string
	Tenants     []tenantLoad
}

// tenantLoad is one tenant's traffic shape.
type tenantLoad struct {
	Name string
	// OpenQPS > 0 paces submissions open-loop at that rate regardless of
	// completions (the overload-generating mode); otherwise Closed workers
	// run closed-loop: submit, wait for the job to finish, repeat.
	OpenQPS float64
	Closed  int

	// Mix fractions (the remainder is interactive singles drawn from a
	// medium warm pool). HotFrac draws from a HotPool-sized replay set
	// (cache-hot); ColdFrac draws a never-repeated seed (cache-miss flood);
	// SweepFrac submits a small batch sweep matrix.
	HotFrac   float64
	ColdFrac  float64
	SweepFrac float64
	HotPool   int

	// SweepKernels widens each sweep matrix to this many kernels (default
	// 1). Multi-kernel matrices exercise the executor's gang dispatch and
	// the partitioned batch path: every kernel × variant block shares a
	// pinned engine, so wider sweeps amortize more per submission.
	SweepKernels int

	// Protected marks tenants whose latency/shed budgets matter (the
	// victims, not the floods): warn-only budget checks apply to them.
	Protected bool
}

// scenarios are the built-in traffic shapes.
var scenarios = map[string]scenario{
	"mixed": {
		Name:        "mixed",
		Description: "three tenants with realistic blended traffic: an interactive API tenant, a batch-sweep tenant, and a bursty ML tenant",
		Tenants: []tenantLoad{
			{Name: "team-api", OpenQPS: 25, HotFrac: 0.6, ColdFrac: 0.1, HotPool: 8, Protected: true},
			{Name: "team-batch", Closed: 2, SweepFrac: 0.4, ColdFrac: 0.6},
			{Name: "team-ml", OpenQPS: 10, HotFrac: 0.3, ColdFrac: 0.7, HotPool: 4},
		},
	},
	"adversarial": {
		Name:        "adversarial",
		Description: "a cache-miss flood (unique specs at high QPS) attacking a low-rate interactive victim replaying a small hot set — the QoS isolation acceptance scenario",
		Tenants: []tenantLoad{
			{Name: "flood", OpenQPS: 90, ColdFrac: 1.0},
			{Name: "victim", OpenQPS: 5, HotFrac: 0.8, ColdFrac: 0.2, HotPool: 4, Protected: true},
		},
	},
	"cache-hot": {
		Name:        "cache-hot",
		Description: "two tenants replaying small hot sets: measures steady-state cache behavior and fair sharing without overload",
		Tenants: []tenantLoad{
			{Name: "replay-a", OpenQPS: 40, HotFrac: 1.0, HotPool: 6, Protected: true},
			{Name: "replay-b", OpenQPS: 40, HotFrac: 1.0, HotPool: 6, Protected: true},
		},
	},
	"batch-sweep": {
		Name:        "batch-sweep",
		Description: "gang-dispatch stress: closed-loop tenants pushing multi-kernel sweep matrices through the batch execution path while a protected interactive tenant rides alongside",
		Tenants: []tenantLoad{
			{Name: "sweeper-a", Closed: 2, SweepFrac: 1.0, SweepKernels: 3},
			{Name: "sweeper-b", Closed: 1, SweepFrac: 0.7, ColdFrac: 0.3, SweepKernels: 2},
			{Name: "interactive", OpenQPS: 10, HotFrac: 0.5, HotPool: 8, Protected: true},
		},
	},
}

// sweepKernelPool is the deterministic draw set for multi-kernel sweep
// matrices (a cheap slice of the Table III kernels; the names must stay
// valid kernel registry entries).
var sweepKernelPool = []string{"cilksort", "matmul", "dict", "radix-1", "hull"}

func scenarioNames() string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ---- deterministic corpus ----

// reqKind classifies one generated request.
type reqKind int

const (
	kindInteractive reqKind = iota // warm-pool single
	kindHot                        // hot-pool replay (cache-hot)
	kindCold                       // unique seed (cache miss)
	kindSweep                      // batch sweep matrix
)

func (k reqKind) String() string {
	switch k {
	case kindHot:
		return "hot"
	case kindCold:
		return "cold"
	case kindSweep:
		return "sweep"
	}
	return "interactive"
}

// genRequest is one request the corpus produced: a job submission (Seed set)
// or a sweep submission (SweepSeeds set, plus the kernels of the matrix).
type genRequest struct {
	Kind         reqKind
	Seed         uint64
	SweepSeeds   []uint64
	SweepKernels []string
}

// corpus deterministically generates one tenant's request stream. Seeds are
// partitioned per tenant (FNV offset) so tenants never collide except by
// design, and the draw sequence depends only on (runSeed, tenant) — never on
// timing — so WFQ and FIFO runs replay identical work.
type corpus struct {
	load     tenantLoad
	rng      *rand.Rand
	base     uint64 // tenant seed-space offset
	coldNext uint64 // monotone unique-seed counter
}

func newCorpus(runSeed int64, load tenantLoad) *corpus {
	h := fnv.New64a()
	fmt.Fprint(h, load.Name)
	base := h.Sum64() &^ (1<<20 - 1) // tenant-sized seed partitions
	return &corpus{
		load: load,
		rng:  rand.New(rand.NewSource(runSeed ^ int64(h.Sum64()))),
		base: base,
	}
}

// next draws the tenant's next request.
func (c *corpus) next() genRequest {
	roll := c.rng.Float64()
	switch {
	case roll < c.load.HotFrac:
		pool := c.load.HotPool
		if pool < 1 {
			pool = 1
		}
		return genRequest{Kind: kindHot, Seed: c.base + uint64(c.rng.Intn(pool))}
	case roll < c.load.HotFrac+c.load.ColdFrac:
		c.coldNext++
		return genRequest{Kind: kindCold, Seed: c.base + 1<<19 + c.coldNext}
	case roll < c.load.HotFrac+c.load.ColdFrac+c.load.SweepFrac:
		// A small sweep matrix widened to SweepKernels kernels drawn
		// deterministically from the pool. Each submission lands as one
		// executor gang, so a wide matrix runs on one worker through the
		// partitioned batch path. The server expands every (kernel, seed)
		// across all five variants, and gang admission counts each cell
		// against the tenant's queue share, so the seed count shrinks as
		// the kernel count grows to keep the matrix admissible (~15 cells)
		// rather than atomically rejected.
		n := c.load.SweepKernels
		if n < 1 {
			n = 1
		}
		if n > len(sweepKernelPool) {
			n = len(sweepKernelPool)
		}
		seedsN := 1
		if n == 1 {
			seedsN = 3
		}
		seeds := make([]uint64, seedsN)
		for i := range seeds {
			c.coldNext++
			seeds[i] = c.base + 1<<19 + c.coldNext
		}
		start := c.rng.Intn(len(sweepKernelPool))
		names := make([]string, n)
		for i := range names {
			names[i] = sweepKernelPool[(start+i)%len(sweepKernelPool)]
		}
		return genRequest{Kind: kindSweep, SweepSeeds: seeds, SweepKernels: names}
	default:
		// Interactive singles from a warm pool: repeats happen, but the
		// pool is wide enough that many submissions still simulate.
		return genRequest{Kind: kindInteractive, Seed: c.base + 1<<18 + uint64(c.rng.Intn(64))}
	}
}
