// Command aaws-sim runs one application kernel on one simulated system
// under one runtime variant and reports timing, scheduler statistics,
// region breakdown, and energy.
//
// Usage:
//
//	aaws-sim -kernel radix-2 -system 4B4L -variant base+psm [-scale 1] [-seed 42]
//	aaws-sim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"aaws/internal/core"
	"aaws/internal/kernels"
	"aaws/internal/stats"
	"aaws/internal/wsrt"
)

func main() {
	kernel := flag.String("kernel", "cilksort", "kernel name (see -list)")
	system := flag.String("system", "4B4L", "target system: 4B4L or 1B7L")
	variant := flag.String("variant", "base+psm", "runtime: base | base+p | base+ps | base+psm | base+m")
	scale := flag.Float64("scale", 1.0, "input size multiplier")
	seed := flag.Uint64("seed", 42, "input/scheduling seed")
	memstall := flag.Bool("memstall", false, "enable MPKI-derived frequency-independent memory stalls")
	adaptive := flag.Bool("adaptive", false, "enable the counter-driven adaptive DVFS tuner")
	randomVictim := flag.Bool("random-victim", false, "use random instead of occupancy-based victim selection")
	nBig := flag.Int("nbig", 0, "custom big-core count (with -nlit; overrides -system)")
	nLit := flag.Int("nlit", 0, "custom little-core count (with -nbig)")
	elastic := flag.Bool("elastic", false, "elastic work-stealing: park steal-looping workers, wake on surplus")
	topology := flag.String("topology", "", "N-way topology, fastest class first: COUNT[xSPEED/POWER],... (e.g. 1x4/3,2x2.5/1.8,4; overrides -system core mix)")
	perWorker := flag.Bool("per-worker", false, "print per-worker statistics")
	list := flag.Bool("list", false, "list kernels and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-7s %-28s %-6s %5s %5s %6s\n",
			"name", "suite", "input", "pm", "alpha", "beta", "mpki")
		for _, k := range kernels.All() {
			fmt.Printf("%-12s %-7s %-28s %-6s %5.1f %5.1f %6.2f\n",
				k.Name, k.Suite, k.Input, k.PM, k.Alpha, k.Beta, k.MPKI)
		}
		fmt.Println("extensions (beyond Table III; excluded from default sweeps):")
		for _, k := range kernels.Extensions() {
			fmt.Printf("%-12s %-7s %-28s %-6s %5.1f %5.1f %6.2f\n",
				k.Name, k.Suite, k.Input, k.PM, k.Alpha, k.Beta, k.MPKI)
		}
		return
	}

	sys, ok := core.ParseSystem(*system)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	v, ok := wsrt.ParseVariant(*variant)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	spec := core.DefaultSpec(*kernel, sys, v)
	spec.Scale = *scale
	spec.Seed = *seed
	spec.MemStall = *memstall
	spec.AdaptiveDVFS = *adaptive
	if *randomVictim {
		spec.Victim = wsrt.RandomVictim
	}
	spec.NBig, spec.NLit = *nBig, *nLit
	spec.Elastic = *elastic
	if *topology != "" {
		topo, err := core.ParseTopology(*topology)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		spec.Topology = topo
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := core.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if res.CheckErr != nil {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILED: %v\n", res.CheckErr)
		os.Exit(1)
	}

	rep := res.Report
	sysName := sys.String()
	if *nBig > 0 {
		sysName = fmt.Sprintf("%dB%dL", *nBig, *nLit)
	}
	if *topology != "" {
		sysName = "topo " + core.FormatTopology(spec.Topology)
	}
	fmt.Printf("%s on %s under %s (seed %d, scale %.2f)\n", *kernel, sysName, v, *seed, *scale)
	fmt.Printf("  result validated against serial reference: OK\n")
	fmt.Printf("  execution time        %v\n", rep.ExecTime)
	fmt.Printf("  app instructions      %.3fM (+ %.3fM serial, %.3fM scheduler overhead)\n",
		rep.AppInstr/1e6, rep.SerialInstr/1e6, rep.OverheadInstr/1e6)
	fmt.Printf("  tasks                 %d spawned, %d executed\n", rep.TasksSpawned, rep.TasksExecuted)
	fmt.Printf("  steals                %d ok, %d failed probes\n", rep.Steals, rep.FailedSteals)
	fmt.Printf("  mugs                  %d ok, %d lost races (%d attempts)\n", rep.Mugs, rep.FailedMugs, rep.MugAttempts)
	if *elastic {
		fmt.Printf("  elastic               %d parks, %d wakes\n", rep.ElasticParks, rep.ElasticWakes)
	}
	fmt.Printf("  DVFS                  %d decisions, %d regulator transitions (%.2f per 10us)\n",
		rep.DVFSDecisions, rep.DVFSTransitions,
		float64(rep.DVFSTransitions)/(rep.ExecTime.Micros()/10))
	fmt.Printf("  energy                %.4g units (avg power %.4g)\n",
		rep.TotalEnergy, rep.TotalEnergy/rep.ExecTime.Seconds())
	fmt.Printf("  speedup vs serial     %.2fx over little(IO), %.2fx over big(O3)\n",
		res.SpeedupVsLittle(), res.SpeedupVsBig())
	fmt.Printf("  regions               ")
	for _, r := range stats.Regions {
		fmt.Printf("%s %.1f%%  ", r, 100*res.Regions.Frac(r))
	}
	fmt.Println()
	if *perWorker {
		fmt.Println("  per-worker:")
		for i, ws := range rep.PerWorker {
			fmt.Printf("    w%-2d tasks %6d  steals %5d  stolen-from %5d  mugs %3d  mugged %3d  app %8.3fM\n",
				i, ws.TasksExecuted, ws.Steals, ws.Stolen, ws.MugsDone, ws.TimesMugged, ws.AppInstr/1e6)
		}
	}
}
