package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"aaws/internal/fabric"
	"aaws/internal/jobs"
)

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// startCoordProcess launches the aaws-coord binary and waits for its HTTP
// listener. The returned command is running; kill it yourself.
func startCoordProcess(t *testing.T, bin string, args []string, httpBase string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(httpBase + "/healthz")
		if err == nil {
			resp.Body.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("coordinator HTTP never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func metricValue(t *testing.T, httpBase, name string) float64 {
	t.Helper()
	resp, err := http.Get(httpBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not exported", name)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCoordCrashRecoverySubprocess is the acceptance drill against the real
// binary: SIGKILL the coordinator process mid-sweep, restart it with the
// same journal and cache directories, and require the drained sweep's
// merged fingerprint to be bit-identical to the committed reference — with
// journal replay observable in metrics and the WAL fully drained at the end.
func TestCoordCrashRecoverySubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash-recovery drill is not -short material")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "aaws-coord")
	build := exec.Command("go", "build", "-o", bin, "aaws/cmd/aaws-coord")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building aaws-coord: %v", err)
	}

	httpPort, fabricPort := freePort(t), freePort(t)
	httpBase := fmt.Sprintf("http://127.0.0.1:%d", httpPort)
	fabricAddr := fmt.Sprintf("127.0.0.1:%d", fabricPort)
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", httpPort),
		"-fabric-addr", fabricAddr,
		"-journal-dir", filepath.Join(dir, "journal"),
		"-cache-dir", filepath.Join(dir, "cache"),
		"-hedge-delay", "-1s", // exactly-once dispatch path under test
		"-heartbeat-timeout", "2s",
	}
	proc := startCoordProcess(t, bin, args, httpBase)
	killed := false
	defer func() {
		if !killed {
			_ = proc.Process.Kill()
			_, _ = proc.Process.Wait()
		}
	}()

	// Two in-process worker nodes with crash-tolerant reconnect: they must
	// ride out the coordinator restart on their own backoff.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		ex := jobs.NewExecutor(jobs.Config{Workers: 2})
		t.Cleanup(ex.Close)
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			Name:           fmt.Sprintf("drill-node-%d", i),
			CoordAddr:      fabricAddr,
			Executor:       ex,
			HeartbeatEvery: 100 * time.Millisecond,
			ReconnectDelay: 50 * time.Millisecond,
			ReconnectMax:   500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Run(ctx) }()
		select {
		case <-w.Ready():
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d never registered", i)
		}
	}

	// Submit the full default matrix (the committed fingerprint's cells).
	resp, err := http.Post(httpBase+"/v1/sweeps", "application/json",
		bytes.NewReader([]byte(`{"scale":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	var sweep jobs.SweepResponse
	err = json.NewDecoder(resp.Body).Decode(&sweep)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: status %d, err %v", resp.StatusCode, err)
	}
	if sweep.Count == 0 {
		t.Fatal("sweep submitted no cells")
	}

	// SIGKILL once the sweep is demonstrably mid-flight.
	deadline := time.Now().Add(2 * time.Minute)
	for metricValue(t, httpBase, "aaws_fabric_shards_completed_total") < float64(sweep.Count/4) {
		if time.Now().After(deadline) {
			t.Fatal("sweep never reached the kill threshold")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = proc.Process.Wait()
	killed = true

	// Restart with the same directories; /readyz gates on journal replay
	// and a re-registered fleet.
	proc2 := startCoordProcess(t, bin, args, httpBase)
	defer func() {
		_ = proc2.Process.Kill()
		_, _ = proc2.Process.Wait()
	}()
	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(httpBase + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatal("restarted coordinator never became ready")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if metricValue(t, httpBase, "aaws_fabric_tasks_replayed_total") == 0 {
		t.Fatal("restarted coordinator replayed nothing from the journal")
	}

	// Resubmit the same matrix: cells still in flight coalesce onto their
	// replayed shards, cells that committed pre-crash are answered from the
	// surviving disk cache. IDs come back in matrix order.
	resp2, err := http.Post(httpBase+"/v1/sweeps", "application/json",
		bytes.NewReader([]byte(`{"scale":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	var sweep2 jobs.SweepResponse
	err = json.NewDecoder(resp2.Body).Decode(&sweep2)
	resp2.Body.Close()
	if err != nil || sweep2.Count != sweep.Count {
		t.Fatalf("resubmit: %d cells (err %v), want %d", sweep2.Count, err, sweep.Count)
	}

	cells := make([][]byte, sweep2.Count)
	for i, id := range sweep2.IDs {
		waitDeadline := time.Now().Add(5 * time.Minute)
		for {
			st, err := http.Get(httpBase + "/v1/jobs/" + id + "?wait=1&wait_ms=10000")
			if err != nil {
				t.Fatal(err)
			}
			var status struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			err = json.NewDecoder(st.Body).Decode(&status)
			st.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if status.State == "done" {
				break
			}
			if status.State == "failed" || status.State == "canceled" {
				t.Fatalf("cell %d ended %s: %s", i, status.State, status.Error)
			}
			if time.Now().After(waitDeadline) {
				t.Fatalf("cell %d stuck in %s", i, status.State)
			}
		}
		// The report endpoint returns the canonical bytes verbatim — the
		// status JSON would re-encode them.
		rep, err := http.Get(httpBase + "/v1/jobs/" + id + "/report")
		if err != nil {
			t.Fatal(err)
		}
		cells[i], err = io.ReadAll(rep.Body)
		rep.Body.Close()
		if err != nil || rep.StatusCode != http.StatusOK {
			t.Fatalf("report %d: status %d, err %v", i, rep.StatusCode, err)
		}
	}

	blob, err := os.ReadFile("../../examples/fabric/fingerprint.json")
	if err != nil {
		t.Fatal(err)
	}
	var want struct {
		Cells       int    `json:"cells"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if want.Cells != len(cells) {
		t.Fatalf("matrix has %d cells, committed fingerprint covers %d", len(cells), want.Cells)
	}
	if got := fabric.Fingerprint(cells); got != want.Fingerprint {
		t.Fatalf("recovered fingerprint %s != committed %s", got, want.Fingerprint)
	}

	// The WAL must be fully drained: every replayed task reached a terminal
	// record in the new incarnation.
	jresp, err := http.Get(httpBase + "/v1/journal")
	if err != nil {
		t.Fatal(err)
	}
	var jm struct {
		OpenJobs int
		Replayed uint64
	}
	err = json.NewDecoder(jresp.Body).Decode(&jm)
	jresp.Body.Close()
	if err != nil || jresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/journal: status %d, err %v", jresp.StatusCode, err)
	}
	if jm.Replayed == 0 {
		t.Fatal("journal reports zero replayed records after a crash restart")
	}
	if jm.OpenJobs != 0 {
		t.Fatalf("journal still has %d open jobs after the sweep drained", jm.OpenJobs)
	}
}
