// Command aaws-coord runs the distributed sweep fabric coordinator: it
// accepts sweep submissions over the same HTTP API aaws-serve speaks, shards
// them by spec content address across registered worker nodes (aaws-serve
// -worker), serves the fabric-wide shared result cache, and hedges slow
// shards onto a second node.
//
// With -selftest it instead boots an in-process fabric — coordinator plus N
// workers over loopback TCP — runs the default sweep matrix through it and
// through a plain single-node loop, and exits nonzero unless the two
// fingerprints are bit-identical (optionally also checking a committed
// fingerprint file, optionally injecting a worker fail-stop mid-sweep, and
// always asserting the second pass is answered from the shared cache).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"aaws/internal/core"
	"aaws/internal/fabric"
	"aaws/internal/jobs"
	"aaws/internal/kernels"
	"aaws/internal/wsrt"
)

func main() {
	var (
		addr        = flag.String("addr", ":8090", "HTTP API listen address")
		fabricAddr  = flag.String("fabric-addr", ":9090", "worker (fabric TCP) listen address")
		cacheSize   = flag.Int("cache-size", 8192, "shared result cache capacity (entries)")
		cacheDir    = flag.String("cache-dir", "", "shared cache spill directory (empty = memory only)")
		journalDir  = flag.String("journal-dir", "", "sweep journal directory (empty = memory only, no crash durability)")
		journalSeg  = flag.Int("journal-segment-mb", 4, "journal segment size before rotation+compaction (MiB)")
		hedgeDelay  = flag.Duration("hedge-delay", time.Second, "delay before hedging an uncommitted shard (negative disables)")
		hedgeJitter = flag.Duration("hedge-jitter", 0, "deterministic per-shard hedge jitter span (0 = hedge-delay/2)")
		hbTimeout   = flag.Duration("heartbeat-timeout", 5*time.Second, "fail workers silent for this long")
		maxBodyKB   = flag.Int("max-body-kb", 1024, "maximum HTTP request body size in KiB")

		selftest = flag.Bool("selftest", false, "run the in-process fabric self-test and exit")
		nNodes   = flag.Int("workers", 2, "selftest: number of in-process worker nodes")
		nodePool = flag.Int("node-workers", 2, "selftest: executor pool size per node")
		system   = flag.String("system", "4B4L", "selftest: system to sweep")
		scale    = flag.Float64("scale", 1.0, "selftest: workload scale factor")
		seed     = flag.Uint64("seed", 42, "selftest: sweep seed")
		failstop = flag.Bool("failstop", false, "selftest: kill one worker mid-sweep and require recovery")
		fpPath   = flag.String("fingerprint", "", "selftest: committed fingerprint file to check against")
		writeFP  = flag.Bool("write-fingerprint", false, "selftest: (re)write the fingerprint file from the single-node run")
		outPath  = flag.String("out", "", "selftest: write a JSON artifact (fingerprints, metrics, shard latencies)")
	)
	flag.Parse()

	if *selftest {
		os.Exit(runSelftest(selftestOptions{
			nodes:    *nNodes,
			nodePool: *nodePool,
			system:   *system,
			scale:    *scale,
			seed:     *seed,
			failstop: *failstop,
			fpPath:   *fpPath,
			writeFP:  *writeFP,
			outPath:  *outPath,
		}))
	}

	cache, err := jobs.NewCache(*cacheSize, *cacheDir)
	if err != nil {
		log.Fatalf("aaws-coord: cache: %v", err)
	}

	// The sweep journal opens before the coordinator so MaxSeq seeds the ID
	// sequence; replaying the pending backlog happens after the listeners
	// are up (workers can register while /readyz reports journal-replay).
	var store jobs.Store
	var pending []jobs.Pending
	if *journalDir != "" {
		j, p, err := jobs.OpenJournal(*journalDir, jobs.JournalConfig{
			SegmentBytes: int64(*journalSeg) << 20,
		})
		if err != nil {
			log.Fatalf("aaws-coord: journal: %v", err)
		}
		store, pending = j, p
	}

	coord, err := fabric.NewCoordinator(fabric.CoordConfig{
		Cache:            cache,
		Store:            store,
		HedgeDelay:       *hedgeDelay,
		HedgeJitter:      *hedgeJitter,
		HeartbeatTimeout: *hbTimeout,
	})
	if err != nil {
		log.Fatalf("aaws-coord: coordinator: %v", err)
	}

	fln, err := net.Listen("tcp", *fabricAddr)
	if err != nil {
		log.Fatalf("aaws-coord: fabric listener: %v", err)
	}
	go func() {
		if err := coord.Serve(fln); err != nil {
			log.Printf("aaws-coord: fabric listener closed: %v", err)
		}
	}()

	api := fabric.NewHTTP(coord, fabric.HTTPOptions{MaxBodyBytes: int64(*maxBodyKB) << 10})
	srv := &http.Server{Addr: *addr, Handler: api}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("aaws-coord: http: %v", err)
		}
	}()
	log.Printf("aaws-coord: api on %s, fabric on %s", *addr, fln.Addr())

	if len(pending) > 0 {
		// Submissions 503 (Retry-After) until the crashed backlog is back in
		// flight; recovered shards park if no worker has re-registered yet.
		api.SetPhase("journal-replay")
		n, err := coord.Recover(pending)
		if err != nil {
			log.Fatalf("aaws-coord: journal replay: %v", err)
		}
		api.SetPhase("")
		log.Printf("aaws-coord: recovered %d journaled task(s)", n)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("aaws-coord: shutting down")
	coord.Close()
	if store != nil {
		_ = store.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

type selftestOptions struct {
	nodes    int
	nodePool int
	system   string
	scale    float64
	seed     uint64
	failstop bool
	fpPath   string
	writeFP  bool
	outPath  string
}

// fingerprintFile is the committed-fingerprint format: enough context to
// refuse a comparison across different sweep parameters.
type fingerprintFile struct {
	System      string  `json:"system"`
	Seed        uint64  `json:"seed"`
	Scale       float64 `json:"scale"`
	Cells       int     `json:"cells"`
	Fingerprint string  `json:"fingerprint"`
}

// selftestArtifact is the -out JSON: the smoke job's evidence.
type selftestArtifact struct {
	System            string         `json:"system"`
	Seed              uint64         `json:"seed"`
	Scale             float64        `json:"scale"`
	Cells             int            `json:"cells"`
	Nodes             int            `json:"nodes"`
	Failstop          bool           `json:"failstop"`
	FailstopFired     bool           `json:"failstop_fired"`
	SingleNode        string         `json:"single_node_fingerprint"`
	Fabric            string         `json:"fabric_fingerprint"`
	Match             bool           `json:"match"`
	SecondPassMatch   bool           `json:"second_pass_match"`
	RemoteCacheHits   uint64         `json:"remote_cache_hits"`
	Metrics           fabric.Metrics `json:"metrics"`
	ShardLatencyCount int            `json:"shard_latency_count"`
	ShardLatencyP50Ms float64        `json:"shard_latency_p50_ms"`
	ShardLatencyP99Ms float64        `json:"shard_latency_p99_ms"`
	ShardLatencyMaxMs float64        `json:"shard_latency_max_ms"`
	ShardLatenciesSec []float64      `json:"shard_latencies_sec"`
	WallSingleNodeMs  float64        `json:"wall_single_node_ms"`
	WallFabricMs      float64        `json:"wall_fabric_ms"`
	WallSecondPassMs  float64        `json:"wall_second_pass_ms"`
}

func runSelftest(o selftestOptions) int {
	sys, ok := core.ParseSystem(o.system)
	if !ok {
		fmt.Fprintf(os.Stderr, "selftest: unknown system %q\n", o.system)
		return 2
	}
	if o.nodes < 1 {
		o.nodes = 1
	}
	specs := sweepMatrix(sys, o.seed, o.scale)
	log.Printf("selftest: %d cells (%s, seed %d, scale %g) across %d nodes",
		len(specs), o.system, o.seed, o.scale, o.nodes)

	// Reference pass: a plain single-node loop, no fabric anywhere. Cell
	// bytes are the canonical outcome encoding — the same bytes the jobs
	// executor caches and the fabric streams.
	t0 := time.Now()
	localCells := make([][]byte, 0, len(specs))
	for _, spec := range specs {
		hash, err := jobs.SpecHash(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selftest: hashing spec: %v\n", err)
			return 2
		}
		res, err := core.Run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selftest: running %s/%s: %v\n", spec.Kernel, spec.Variant, err)
			return 2
		}
		data, err := jobs.CanonicalJSON(jobs.NewOutcome(hash, res))
		if err != nil {
			fmt.Fprintf(os.Stderr, "selftest: encoding outcome: %v\n", err)
			return 2
		}
		localCells = append(localCells, data)
	}
	wallLocal := time.Since(t0)
	localFP := fabric.Fingerprint(localCells)

	// Fabric pass: coordinator + HTTP API + N workers, all in-process over
	// loopback, each node consulting the shared tier under its local cache.
	coord, err := fabric.NewCoordinator(fabric.CoordConfig{
		HedgeDelay:       500 * time.Millisecond,
		HeartbeatTimeout: 2 * time.Second,
		RetryBackoff:     25 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "selftest: coordinator: %v\n", err)
		return 2
	}
	defer coord.Close()
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "selftest: fabric listener: %v\n", err)
		return 2
	}
	go func() { _ = coord.Serve(fln) }()
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "selftest: http listener: %v\n", err)
		return 2
	}
	hsrv := &http.Server{Handler: fabric.NewHTTP(coord, fabric.HTTPOptions{})}
	go func() { _ = hsrv.Serve(hln) }()
	defer hsrv.Close()
	base := "http://" + hln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cancels := make([]context.CancelFunc, o.nodes)
	for i := 0; i < o.nodes; i++ {
		local, err := jobs.NewCache(1024, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "selftest: node cache: %v\n", err)
			return 2
		}
		ex := jobs.NewExecutor(jobs.Config{
			Workers: o.nodePool,
			Cache:   jobs.NewTieredCache(local, fabric.NewRemoteCache(base)),
		})
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			Name:           fmt.Sprintf("node-%d", i),
			CoordAddr:      fln.Addr().String(),
			Executor:       ex,
			HeartbeatEvery: 100 * time.Millisecond,
			ReconnectDelay: 100 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "selftest: worker: %v\n", err)
			return 2
		}
		wctx, wcancel := context.WithCancel(ctx)
		cancels[i] = wcancel
		go func() { _ = w.Run(wctx) }()
		select {
		case <-w.Ready():
		case <-time.After(10 * time.Second):
			fmt.Fprintf(os.Stderr, "selftest: worker node-%d never registered\n", i)
			return 2
		}
	}

	// Fail-stop injection: once a third of the shards have committed, kill
	// node-0's connection. The coordinator must fail it and re-dispatch its
	// uncommitted shards without disturbing the merged result.
	failstopFired := make(chan bool, 1)
	stopInjector := make(chan struct{})
	if o.failstop && o.nodes > 1 {
		go func() {
			threshold := uint64(len(specs) / 3)
			if threshold == 0 {
				threshold = 1
			}
			for {
				if coord.Metrics().ShardsCompleted >= threshold {
					cancels[0]()
					log.Printf("selftest: fail-stop injected on node-0 after %d shards", threshold)
					failstopFired <- true
					return
				}
				select {
				case <-stopInjector:
					failstopFired <- false
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
		}()
	} else {
		failstopFired <- false
	}

	t1 := time.Now()
	cells, err := coord.CellBytes(ctx, specs)
	wallFabric := time.Since(t1)
	close(stopInjector)
	fired := <-failstopFired
	if err != nil {
		fmt.Fprintf(os.Stderr, "selftest: fabric sweep: %v\n", err)
		return 1
	}
	fabricFP := fabric.Fingerprint(cells)
	match := fabricFP == localFP

	// Second pass: every cell must now be answered from the shared tier.
	t2 := time.Now()
	cells2, err := coord.CellBytes(ctx, specs)
	wallSecond := time.Since(t2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selftest: second pass: %v\n", err)
		return 1
	}
	secondMatch := fabric.Fingerprint(cells2) == localFP
	m := coord.Metrics()

	lats := coord.ShardLatencies()
	art := selftestArtifact{
		System:            o.system,
		Seed:              o.seed,
		Scale:             o.scale,
		Cells:             len(specs),
		Nodes:             o.nodes,
		Failstop:          o.failstop,
		FailstopFired:     fired,
		SingleNode:        localFP,
		Fabric:            fabricFP,
		Match:             match,
		SecondPassMatch:   secondMatch,
		RemoteCacheHits:   m.RemoteHits,
		Metrics:           m,
		ShardLatencyCount: len(lats),
		ShardLatencyP50Ms: percentile(lats, 0.50) * 1e3,
		ShardLatencyP99Ms: percentile(lats, 0.99) * 1e3,
		ShardLatencyMaxMs: percentile(lats, 1.0) * 1e3,
		ShardLatenciesSec: lats,
		WallSingleNodeMs:  float64(wallLocal) / float64(time.Millisecond),
		WallFabricMs:      float64(wallFabric) / float64(time.Millisecond),
		WallSecondPassMs:  float64(wallSecond) / float64(time.Millisecond),
	}
	if o.outPath != "" {
		blob, _ := json.MarshalIndent(art, "", "  ")
		if err := os.WriteFile(o.outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "selftest: writing artifact: %v\n", err)
			return 2
		}
		log.Printf("selftest: artifact written to %s", o.outPath)
	}

	log.Printf("selftest: single-node %s", localFP)
	log.Printf("selftest: fabric      %s (%d workers, failstop fired=%v)", fabricFP, o.nodes, fired)
	log.Printf("selftest: shards=%d redispatches=%d hedges=%d duplicates=%d remote_hits=%d",
		m.ShardsCompleted, m.Redispatches, m.HedgesFired, m.Duplicates, m.RemoteHits)

	code := 0
	if !match {
		fmt.Fprintln(os.Stderr, "selftest: FAIL: fabric fingerprint does not match single-node")
		code = 1
	}
	if !secondMatch {
		fmt.Fprintln(os.Stderr, "selftest: FAIL: second-pass fingerprint does not match single-node")
		code = 1
	}
	if m.RemoteHits == 0 {
		fmt.Fprintln(os.Stderr, "selftest: FAIL: second pass produced no shared-cache hits")
		code = 1
	}
	if o.failstop && o.nodes > 1 && fired && m.Redispatches == 0 && m.Duplicates == 0 {
		// The killed node's uncommitted shards must have moved somewhere;
		// either a re-dispatch happened or every one of its shards had
		// already committed (in which case duplicates may also be zero and
		// the kill landed after the sweep — fired would normally be false).
		log.Printf("selftest: note: fail-stop fired but no re-dispatches were needed")
	}

	if o.writeFP && o.fpPath != "" {
		blob, _ := json.MarshalIndent(fingerprintFile{
			System: o.system, Seed: o.seed, Scale: o.scale,
			Cells: len(specs), Fingerprint: localFP,
		}, "", "  ")
		if err := os.WriteFile(o.fpPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "selftest: writing fingerprint: %v\n", err)
			return 2
		}
		log.Printf("selftest: fingerprint written to %s", o.fpPath)
	} else if o.fpPath != "" {
		blob, err := os.ReadFile(o.fpPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selftest: reading fingerprint file: %v\n", err)
			return 2
		}
		var want fingerprintFile
		if err := json.Unmarshal(blob, &want); err != nil {
			fmt.Fprintf(os.Stderr, "selftest: parsing fingerprint file: %v\n", err)
			return 2
		}
		if want.System != o.system || want.Seed != o.seed || want.Scale != o.scale {
			fmt.Fprintf(os.Stderr,
				"selftest: FAIL: fingerprint file is for %s/seed=%d/scale=%g, ran %s/seed=%d/scale=%g\n",
				want.System, want.Seed, want.Scale, o.system, o.seed, o.scale)
			code = 1
		} else if want.Fingerprint != fabricFP {
			fmt.Fprintf(os.Stderr, "selftest: FAIL: committed fingerprint %s != fabric %s\n",
				want.Fingerprint, fabricFP)
			code = 1
		} else {
			log.Printf("selftest: committed fingerprint matches")
		}
	}

	if code == 0 {
		log.Printf("selftest: PASS")
	}
	return code
}

// sweepMatrix mirrors core.Sweep's spec construction (kernels x variants,
// one seed) so the fabric is exercised on exactly the default matrix.
func sweepMatrix(sys core.System, seed uint64, scale float64) []core.Spec {
	var specs []core.Spec
	for _, name := range kernels.Names() {
		for _, v := range wsrt.Variants {
			specs = append(specs, core.Spec{
				Kernel: name, System: sys, Variant: v,
				Seed: seed, Scale: scale,
			})
		}
	}
	return specs
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	s := make([]float64, len(sorted))
	copy(s, sorted)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
