package main

import (
	"bytes"
	"strings"
	"testing"

	"aaws/internal/core"
	"aaws/internal/power"
	"aaws/internal/wsrt"
)

// goodResult runs one small validated cell so the tests have a Result that
// genuinely passes the full verification chain.
func goodResult(t *testing.T) core.Result {
	t.Helper()
	spec := core.DefaultSpec("dict", core.Sys4B4L, wsrt.BasePSM)
	spec.Seed = 7
	spec.Scale = 0.05
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerifyResultPassesOnValidRun(t *testing.T) {
	if err := verifyResult("dict/4B4L/base+psm", goodResult(t)); err != nil {
		t.Fatalf("valid run failed verification: %v", err)
	}
}

func TestVerifyResultCatchesInvariantViolation(t *testing.T) {
	res := goodResult(t)
	res.Report.TasksExecuted++ // simulate a lost/duplicated task
	err := verifyResult("dict/4B4L/base+psm", res)
	if err == nil {
		t.Fatal("broken scheduler invariants passed verification")
	}
	if !strings.Contains(err.Error(), "tasks created") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestVerifyResultCatchesConservationViolation(t *testing.T) {
	res := goodResult(t)
	if len(res.Report.Energy) == 0 {
		t.Fatal("run produced no energy accounting")
	}
	// Desynchronize one core's accounted time span from the others.
	res.Report.Energy = append([]power.Breakdown(nil), res.Report.Energy...)
	res.Report.Energy[0].ActiveTime += 12345
	err := verifyResult("dict/4B4L/base+psm", res)
	if err == nil {
		t.Fatal("broken energy conservation passed verification")
	}
	if !strings.Contains(err.Error(), "stats:") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRunMarksReportFailed covers the wiring from a failed section to the
// non-zero exit: run() must set hadError, which realMain turns into exit 1.
func TestRunMarksReportFailed(t *testing.T) {
	var diag bytes.Buffer
	hadError = false
	errOut = &diag
	defer func() { hadError = false }()

	spec := core.DefaultSpec("dict", core.Sys4B4L, wsrt.BasePSM)
	spec.Kernel = "no-such-kernel"
	if _, ok := run(spec); ok {
		t.Fatal("run() reported success for an unknown kernel")
	}
	if !hadError {
		t.Fatal("run() failure did not mark the report as failed")
	}
	if !strings.Contains(diag.String(), "aaws-report:") {
		t.Fatalf("no diagnostic written: %q", diag.String())
	}
}

func TestRealMainBadFlagExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "flag") {
		t.Fatalf("no usage diagnostic: %q", errw.String())
	}
}
