// Command aaws-sweep regenerates Figure 8: execution-time breakdowns for
// every kernel under every runtime variant on one (or both) systems, plus
// the paper's headline summary statistics.
//
// Usage:
//
//	aaws-sweep                      # 4B4L, all kernels, all variants
//	aaws-sweep -system 1B7L
//	aaws-sweep -system both -scale 0.5
//	aaws-sweep -kernels radix-2,hull -csv
//	aaws-sweep -cache -cache-dir .aaws-cache -workers 8   # via the jobs executor
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"aaws/internal/core"
	"aaws/internal/jobs"
	"aaws/internal/profiling"
	"aaws/internal/stats"
	"aaws/internal/wsrt"
)

func main() {
	system := flag.String("system", "4B4L", "4B4L, 1B7L, or both")
	scale := flag.Float64("scale", 1.0, "input size multiplier")
	seed := flag.Uint64("seed", 42, "seed")
	list := flag.String("kernels", "", "comma-separated kernel subset (default all)")
	elastic := flag.Bool("elastic", false, "elastic work-stealing for every cell")
	topology := flag.String("topology", "", "N-way topology for every cell: COUNT[xSPEED/POWER],... (overrides the system core mix)")
	csv := flag.Bool("csv", false, "CSV output")
	useCache := flag.Bool("cache", false, "run cells through the jobs executor with a content-addressed result cache")
	cacheDir := flag.String("cache-dir", "", "on-disk result store (implies -cache; reused across invocations)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "executor worker-pool size (with -cache)")
	prof := profiling.AddFlags("sweep")
	flag.Parse()

	var systems []core.System
	switch *system {
	case "both":
		systems = []core.System{core.Sys4B4L, core.Sys1B7L}
	default:
		s, ok := core.ParseSystem(*system)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
			os.Exit(2)
		}
		systems = []core.System{s}
	}

	// With -cache (or -cache-dir), the matrix runs through the shared
	// executor: cells execute concurrently across the worker pool and
	// identical cells — within this sweep or across invocations via the
	// disk store — are served from the content-addressed cache.
	var runAll func([]core.Spec) ([]core.Result, error)
	if *useCache || *cacheDir != "" {
		cache, err := jobs.NewCache(4096, *cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ex := jobs.NewExecutor(jobs.Config{Workers: *workers, Cache: cache})
		defer ex.Close()
		runAll = ex.BatchRunner(context.Background())
	} else {
		// Without the executor, the matrix still runs through the
		// partitioned batch path: one pinned engine and one LUT resolve per
		// (kernel, system, LUT-mode) partition.
		runAll = core.RunBatch
	}
	// Count cells and simulation events for the -benchjson summary.
	inner := runAll
	runAll = func(specs []core.Spec) ([]core.Result, error) {
		results, err := inner(specs)
		if err != nil {
			return nil, err
		}
		prof.Cells += len(results)
		for _, r := range results {
			prof.Events += r.Report.Events
		}
		return results, nil
	}

	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer prof.Stop()

	for _, sys := range systems {
		opt := core.DefaultSweep(sys)
		opt.Scale = *scale
		opt.Seed = *seed
		opt.RunAll = runAll
		opt.Elastic = *elastic
		if *topology != "" {
			topo, err := core.ParseTopology(*topology)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opt.Topology = topo
		}
		if *list != "" {
			opt.Kernels = strings.Split(*list, ",")
		}
		rows, err := core.Sweep(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			writeCSV(sys, rows)
		} else {
			writeTable(sys, rows)
		}
	}
}

func writeTable(sys core.System, rows []core.Figure8Row) {
	fmt.Printf("\nFigure 8 — normalized execution time breakdown, %s (speedup over base)\n", sys)
	fmt.Printf("%-10s", "kernel")
	for _, v := range wsrt.Variants[1:] {
		fmt.Printf("%10s", v)
	}
	fmt.Printf("   base regions: serial/HP/BI<LA/BI>=LA/oLP   mugs(psm)\n")
	for _, r := range rows {
		fmt.Printf("%-10s", r.Kernel)
		for _, v := range wsrt.Variants[1:] {
			fmt.Printf("%9.3fx", r.Speedup(v))
		}
		b := r.Results[0].Regions
		var mugs int
		for _, vr := range r.Results {
			if vr.Variant == wsrt.BasePSM {
				mugs = vr.Mugs
			}
		}
		fmt.Printf("   %5.1f/%5.1f/%5.1f/%6.1f/%5.1f%%   %6d\n",
			100*b.Frac(stats.RegionSerial), 100*b.Frac(stats.RegionHP),
			100*b.Frac(stats.RegionBILessLA), 100*b.Frac(stats.RegionBIGeqLA),
			100*b.Frac(stats.RegionOtherLP), mugs)
	}
	s := core.Summarize(rows, wsrt.BasePSM)
	fmt.Printf("\nheadline (%s base+psm): speedup min/median/max = %.2fx/%.2fx/%.2fx", sys,
		s.MinSpeedup, s.MedianSpeedup, s.MaxSpeedup)
	fmt.Printf("   (paper 4B4L: 1.02x/1.10x/1.32x)\n")
	fmt.Printf("energy efficiency min/median/max = %.2fx/%.2fx/%.2fx", s.MinEnergyEff, s.MedianEnergyEff, s.MaxEnergyEff)
	fmt.Printf("   (paper 4B4L: median 1.11x, max 1.53x)\n")
	fmt.Printf("%d/%d kernels faster, %d/%d more energy-efficient\n",
		s.KernelsFaster, s.TotalKernels, s.KernelsMoreEff, s.TotalKernels)
}

func writeCSV(sys core.System, rows []core.Figure8Row) {
	fmt.Println("system,kernel,variant,time_us,energy,speedup_vs_base,energy_eff_vs_base,serial,hp,bi_lt_la,bi_ge_la,olp,mugs,steals,dvfs_transitions")
	for _, r := range rows {
		for _, vr := range r.Results {
			b := vr.Regions
			fmt.Printf("%s,%s,%s,%.3f,%.6g,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d,%d\n",
				sys, r.Kernel, vr.Variant, vr.Time.Micros(), vr.Energy,
				r.Speedup(vr.Variant), r.EnergyEff(vr.Variant),
				b.Frac(stats.RegionSerial), b.Frac(stats.RegionHP),
				b.Frac(stats.RegionBILessLA), b.Frac(stats.RegionBIGeqLA),
				b.Frac(stats.RegionOtherLP), vr.Mugs, vr.Steals, vr.DVFS)
		}
	}
}
