// Command aaws-model evaluates the paper's first-order analytical model
// (Section II): it regenerates the data behind Figures 2-5 and prints the
// DVFS lookup tables derived from the marginal-utility optimization.
//
// Usage:
//
//	aaws-model -fig 2 [-csv]          # Figure 2 pareto cloud
//	aaws-model -fig 3                 # Figure 3 HP-region optimum
//	aaws-model -fig 4                 # Figure 4 speedup vs alpha/beta grid
//	aaws-model -fig 5                 # Figure 5 LP-region optimum + single task
//	aaws-model -lut pacing+sprinting  # print a DVFS lookup table
package main

import (
	"flag"
	"fmt"
	"os"

	"aaws/internal/model"
	"aaws/internal/power"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2, 3, 4, or 5)")
	lutMode := flag.String("lut", "", "print a LUT: nominal | pacing | pacing+sprinting")
	alpha := flag.Float64("alpha", 3, "big/little energy ratio")
	beta := flag.Float64("beta", 2, "big/little IPC ratio")
	nBig := flag.Int("nbig", 4, "big cores")
	nLit := flag.Int("nlit", 4, "little cores")
	csv := flag.Bool("csv", false, "emit CSV instead of a text summary")
	flag.Parse()

	cfg := model.Config{
		Params: power.DefaultParams().WithAlphaBeta(*alpha, *beta),
		NBig:   *nBig,
		NLit:   *nLit,
	}

	switch {
	case *lutMode != "":
		printLUT(cfg, *lutMode)
	case *fig == 2:
		figure2(cfg, *csv)
	case *fig == 3:
		figure3(cfg)
	case *fig == 4:
		figure4(cfg, *csv)
	case *fig == 5:
		figure5(cfg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printLUT(cfg model.Config, mode string) {
	var m model.Mode
	switch mode {
	case "nominal":
		m = model.ModeNominal
	case "pacing":
		m = model.ModePacing
	case "pacing+sprinting":
		m = model.ModePacingSprinting
	default:
		fmt.Fprintf(os.Stderr, "unknown LUT mode %q\n", mode)
		os.Exit(2)
	}
	fmt.Print(model.GenerateLUT(cfg, m).String())
}

func figure2(cfg model.Config, csv bool) {
	pts := model.Pareto(cfg, 24)
	if csv {
		fmt.Println("vbig,vlit,perf,energy_eff,power_ratio")
		for _, p := range pts {
			fmt.Printf("%.3f,%.3f,%.4f,%.4f,%.4f\n", p.VBig, p.VLit, p.Perf, p.EnergyEff, p.PowerRatio)
		}
		return
	}
	fmt.Printf("Figure 2: %dB%dL pareto cloud, %d points (normalized to nominal)\n",
		cfg.NBig, cfg.NLit, len(pts))
	var bestBoth model.ParetoPoint
	for _, p := range pts {
		if p.Perf > 1 && p.EnergyEff > 1 &&
			p.Perf*p.EnergyEff > bestBoth.Perf*bestBoth.EnergyEff {
			bestBoth = p
		}
	}
	fmt.Printf("best win-win point: VB=%.2f VL=%.2f -> perf %.3fx, efficiency %.3fx, power %.3fx\n",
		bestBoth.VBig, bestBoth.VLit, bestBoth.Perf, bestBoth.EnergyEff, bestBoth.PowerRatio)
	fmt.Println("(upper-right quadrant exists: careful voltage tuning improves both at once)")
}

func figure3(cfg model.Config) {
	r := model.Optimize(cfg, cfg.NBig, cfg.NLit, false)
	fmt.Printf("Figure 3: %dB%dL all cores active, alpha=%.1f beta=%.1f\n",
		cfg.NBig, cfg.NLit, cfg.Params.Alpha, cfg.Params.Beta)
	fmt.Printf("  optimal:  VB=%.2fV VL=%.2fV  speedup %.3fx   (paper: 0.86V, 1.44V, 1.12x)\n",
		r.Optimal.VBig, r.Optimal.VLit, r.SpeedupOptimal)
	fmt.Printf("  feasible: VB=%.2fV VL=%.2fV  speedup %.3fx   (paper: 0.93V, Vmax, 1.10x)\n",
		r.Feasible.VBig, r.Feasible.VLit, r.SpeedupFeasible)
	mb := cfg.Params.MarginalUtility(power.Big, r.Optimal.VBig)
	ml := cfg.Params.MarginalUtility(power.Little, r.Optimal.VLit)
	fmt.Printf("  equi-marginal check: dP/dIPS big=%.4g little=%.4g (equal at optimum)\n", mb, ml)
}

func figure4(cfg model.Config, csv bool) {
	alphas := []float64{1, 1.5, 2, 2.5, 3, 4, 5, 6, 8}
	betas := []float64{1, 1.25, 1.5, 1.75, 2, 2.5, 3, 3.5, 4}
	g := model.Figure4(cfg, alphas, betas)
	if csv {
		fmt.Println("alpha,beta,optimal_speedup,feasible_speedup")
		for i, a := range alphas {
			for j, b := range betas {
				fmt.Printf("%.2f,%.2f,%.4f,%.4f\n", a, b, g.Optimal[i][j], g.Feasible[i][j])
			}
		}
		return
	}
	fmt.Printf("Figure 4: optimal (feasible) all-active speedup vs alpha (rows) and beta (cols)\n%8s", "")
	for _, b := range betas {
		fmt.Printf("%14.2f", b)
	}
	fmt.Println()
	for i, a := range alphas {
		fmt.Printf("%8.2f", a)
		for j := range betas {
			fmt.Printf("  %.2f (%.2f) ", g.Optimal[i][j], g.Feasible[i][j])
		}
		fmt.Println()
	}
	fmt.Println("(largest gains when alpha/beta > 1: big cores pay much energy for moderate speedup)")
}

func figure5(cfg model.Config) {
	r := model.Optimize(cfg, cfg.NBig/2, cfg.NLit/2, true)
	fmt.Printf("Figure 5: %dB%dL with %dB%dL active, inactive cores resting at Vmin\n",
		cfg.NBig, cfg.NLit, cfg.NBig/2, cfg.NLit/2)
	fmt.Printf("  optimal:  VB=%.2fV VL=%.2fV  speedup %.3fx   (paper: 1.02V, 1.70V, 1.55x)\n",
		r.Optimal.VBig, r.Optimal.VLit, r.SpeedupOptimal)
	fmt.Printf("  feasible: VB=%.2fV VL=%.2fV  speedup %.3fx   (paper: 1.16V, Vmax, 1.45x)\n",
		r.Feasible.VBig, r.Feasible.VLit, r.SpeedupFeasible)
	st := model.SingleTask(cfg)
	fmt.Println("single remaining task (everything else resting):")
	fmt.Printf("  on little: optimal V=%.2fV, feasible speedup %.2fx vs little@VN (paper: 2.59V, 1.6x)\n",
		st.LittleOptimalV, st.LittleFeasibleSpeedup)
	fmt.Printf("  on big:    optimal V=%.2fV, feasible speedup %.2fx vs little@VN (paper: 1.51V, 3.3x)\n",
		st.BigOptimalV, st.BigFeasibleSpeedup)
	fmt.Println("(moving the last task to a big core wins: the motivation for work-mugging)")
}
