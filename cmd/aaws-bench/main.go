// Command aaws-bench is the pinned performance-regression harness: it runs
// the engine microbenchmarks plus one representative sweep, writes the
// results as BENCH.json, and optionally compares them against a committed
// baseline with a tolerance threshold.
//
//	go run ./cmd/aaws-bench -quick -out BENCH.json
//	go run ./cmd/aaws-bench -quick -baseline BENCH.json   # warn on regression
//	go run ./cmd/aaws-bench -quick -baseline BENCH.json -strict  # exit 1
//
// Wall-clock metrics (ns_per_op, wall_ms, events_per_sec) vary with the
// host; the comparison tolerance exists for them. Allocation metrics
// (allocs_per_op, mallocs_per_cell) are machine-independent and are the
// robust regression signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"aaws/internal/core"
	"aaws/internal/kernels"
	"aaws/internal/sim"
)

// Metrics is one benchmark's measurements, keyed by metric name.
type Metrics map[string]float64

// Output is the BENCH.json schema.
type Output struct {
	Schema     int                `json:"schema"`
	GoVersion  string             `json:"go"`
	Quick      bool               `json:"quick"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// Reference preserves measurements of interest from before a change
	// (e.g. the pre-pooling engine), for documentation; it is never
	// compared against.
	Reference map[string]Metrics `json:"reference,omitempty"`
}

// lowerIsBetter classifies metrics for the regression comparison; metrics
// not listed (counts like cells/events) are informational only.
var lowerIsBetter = map[string]bool{
	"ns_per_op":        true,
	"allocs_per_op":    true,
	"wall_ms":          true,
	"mallocs_per_cell": true,
	"events_per_sec":   false,
}

func main() {
	var (
		quick      = flag.Bool("quick", false, "pinned quick suite (CI configuration: 4 kernels, scale 0.2)")
		scale      = flag.Float64("scale", 0, "override sweep problem scale (0 = suite default)")
		out        = flag.String("out", "BENCH.json", "write results to this file ('' = stdout only)")
		baseline   = flag.String("baseline", "", "compare against this committed BENCH.json")
		tolerance  = flag.Float64("tolerance", 0.25, "relative slack before a wall-clock metric counts as regressed")
		strict     = flag.Bool("strict", false, "exit non-zero on regression (default: warn only)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file")
	)
	flag.Parse()

	res := Output{
		Schema:     1,
		GoVersion:  runtime.Version(),
		Quick:      *quick,
		Benchmarks: map[string]Metrics{},
	}

	fmt.Println("== engine microbenchmarks ==")
	for name, m := range engineBenchmarks() {
		res.Benchmarks[name] = m
		fmt.Printf("  %-24s %8.1f ns/op  %6.1f allocs/op\n", name, m["ns_per_op"], m["allocs_per_op"])
	}

	fmt.Println("== representative sweep ==")
	name, m, err := sweepBenchmark(*quick, *scale, *cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aaws-bench:", err)
		os.Exit(1)
	}
	res.Benchmarks[name] = m
	fmt.Printf("  %-24s %.0f ms wall, %.0f cells, %.3g events (%.3g events/sec, %.0f mallocs/cell)\n",
		name, m["wall_ms"], m["cells"], m["events"], m["events_per_sec"], m["mallocs_per_cell"])

	if *out != "" {
		if prev, err := readBaseline(*out); err == nil && prev.Reference != nil {
			res.Reference = prev.Reference // carry the documented reference forward
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "aaws-bench:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aaws-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aaws-bench:", err)
			os.Exit(1)
		}
		if regressed := compare(base, res, *tolerance); regressed && *strict {
			os.Exit(1)
		}
	}
}

// engineBenchmarks times the schedule/cancel/reschedule hot paths by hand
// (no testing.B in a main package) and measures their steady-state
// allocation rate with testing.AllocsPerRun.
func engineBenchmarks() map[string]Metrics {
	const iters = 2_000_000
	fn := func() {}
	out := map[string]Metrics{}

	time1 := func(body func(i int)) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			body(i)
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}

	e := sim.NewEngine()
	for i := 0; i < 10_000; i++ { // warm arena
		e.After(sim.Time(i%97), fn)
		e.Step()
	}
	out["engine/schedule_pop"] = Metrics{
		"ns_per_op": time1(func(i int) {
			e.After(sim.Time(i%97), fn)
			e.Step()
		}),
		"allocs_per_op": testing.AllocsPerRun(1000, func() {
			e.After(7, fn)
			e.Step()
		}),
	}

	e.Reset()
	for i := 0; i < 10_000; i++ {
		ev := e.After(sim.Time(7+i%13), fn)
		e.After(sim.Time(i%7), fn)
		ev.Cancel()
		e.Step()
	}
	out["engine/cancel"] = Metrics{
		"ns_per_op": time1(func(i int) {
			ev := e.After(sim.Time(7+i%13), fn)
			e.After(sim.Time(i%7), fn)
			ev.Cancel()
			e.Step()
		}),
		"allocs_per_op": testing.AllocsPerRun(1000, func() {
			ev := e.After(7, fn)
			e.After(3, fn)
			ev.Cancel()
			e.Step()
		}),
	}
	e.Run(0)

	e.Reset()
	var ev sim.Event
	resched := func(i int) {
		ev.Cancel()
		ev = e.After(sim.Time(50+i%31), fn)
		e.After(sim.Time(i%11), fn)
		e.Step()
	}
	for i := 0; i < 10_000; i++ {
		resched(i)
	}
	out["engine/reschedule"] = Metrics{
		"ns_per_op": time1(resched),
		"allocs_per_op": testing.AllocsPerRun(1000, func() {
			resched(3)
		}),
	}
	e.Run(0)
	return out
}

// sweepBenchmark runs the representative sweep — core.DefaultSweep on the
// 4B4L system — and reports wall clock, simulation events per second, and
// host allocations per cell.
func sweepBenchmark(quick bool, scale float64, cpuprofile, memprofile string) (string, Metrics, error) {
	opt := core.DefaultSweep(core.Sys4B4L)
	name := "sweep/default_4B4L"
	opt.Scale = 0.35 // bench_test.go's benchScale: fast but representative
	if quick {
		opt.Kernels = kernels.Names()[:4]
		opt.Scale = 0.2
		name = "sweep/quick_4B4L"
	}
	if scale > 0 {
		opt.Scale = scale
	}
	var cells int
	var events uint64
	opt.RunAll = func(specs []core.Spec) ([]core.Result, error) {
		results := make([]core.Result, len(specs))
		for i, s := range specs {
			r, err := core.Run(s)
			if err != nil {
				return nil, err
			}
			events += r.Report.Events
			results[i] = r
		}
		cells = len(specs)
		return results, nil
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return name, nil, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return name, nil, err
		}
		defer pprof.StopCPUProfile()
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := core.Sweep(opt); err != nil {
		return name, nil, err
	}
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return name, nil, err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return name, nil, err
		}
	}

	m := Metrics{
		"wall_ms":          float64(wall.Milliseconds()),
		"cells":            float64(cells),
		"events":           float64(events),
		"events_per_sec":   float64(events) / wall.Seconds(),
		"mallocs_per_cell": float64(after.Mallocs-before.Mallocs) / float64(cells),
	}
	return name, m, nil
}

func readBaseline(path string) (Output, error) {
	var out Output
	buf, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(buf, &out)
	return out, err
}

// compare prints a PASS/WARN line per shared metric and reports whether
// anything regressed beyond the tolerance. Zero-allocation baselines get
// no relative slack: any allocation at all is a regression.
func compare(base, cur Output, tol float64) bool {
	regressed := false
	fmt.Println("== baseline comparison ==")
	for name, bm := range base.Benchmarks {
		cm, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("  SKIP %s: not in current run\n", name)
			continue
		}
		for metric, bv := range bm {
			lower, tracked := lowerIsBetter[metric]
			cv, ok := cm[metric]
			if !tracked || !ok {
				continue
			}
			bad := false
			switch {
			case bv == 0:
				bad = cv > 0 && lower
			case lower:
				bad = cv > bv*(1+tol)
			default:
				bad = cv < bv*(1-tol)
			}
			status := "PASS"
			if bad {
				status = "WARN"
				regressed = true
			}
			fmt.Printf("  %s %s/%s: %.4g (baseline %.4g, tolerance %.0f%%)\n",
				status, name, metric, cv, bv, tol*100)
		}
	}
	if regressed {
		fmt.Println("  regression detected (see WARN lines)")
	}
	return regressed
}
