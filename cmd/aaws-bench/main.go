// Command aaws-bench is the pinned performance-regression harness: it runs
// the engine microbenchmarks plus one or more representative sweeps, writes
// the results as BENCH.json, and optionally compares them against a
// committed baseline with a tolerance threshold.
//
//	go run ./cmd/aaws-bench -quick -out BENCH.json
//	go run ./cmd/aaws-bench -full -out BENCH.json          # quick + default + batch
//	go run ./cmd/aaws-bench -quick -baseline BENCH.json    # warn on regression
//	go run ./cmd/aaws-bench -quick -baseline BENCH.json -strict       # exit 1 on any
//	go run ./cmd/aaws-bench -quick -baseline BENCH.json -gate-engine  # exit 1 on engine/*
//
// Wall-clock metrics (ns_per_op, wall_ms, events_per_sec) vary with the
// host; the comparison tolerance exists for them. Allocation metrics
// (allocs_per_op, mallocs_per_cell) are machine-independent and are the
// robust regression signal.
//
// Suite composition:
//
//   - engine/* microbenchmarks always run.
//   - sweep/quick_4B4L (4 kernels, scale 0.2) exercises the per-cell
//     core.Run path; it is the CI smoke configuration.
//   - sweep/default_4B4L (all kernels × variants, 110 cells) exercises the
//     partitioned batch path from a cold cache: its wall clock includes the
//     one-time LUT generation for every kernel (~175 ms of bisection math).
//   - batch/default_4B4L is the same 110-cell matrix in warm steady state —
//     LUT and engine caches filled by an untimed pass — which is the serving
//     condition the sub-300 ms target gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"aaws/internal/core"
	"aaws/internal/kernels"
	"aaws/internal/sim"
	"aaws/internal/wsrt"
)

// Metrics is one benchmark's measurements, keyed by metric name.
type Metrics map[string]float64

// Output is the BENCH.json schema.
type Output struct {
	Schema     int                `json:"schema"`
	GoVersion  string             `json:"go"`
	Quick      bool               `json:"quick"`
	Full       bool               `json:"full,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// Reference preserves measurements of interest from before a change
	// (e.g. the pre-pooling engine), for documentation; it is never
	// compared against.
	Reference map[string]Metrics `json:"reference,omitempty"`
}

// lowerIsBetter classifies metrics for the regression comparison; metrics
// not listed (counts like cells/events) are informational only.
var lowerIsBetter = map[string]bool{
	"ns_per_op":        true,
	"allocs_per_op":    true,
	"wall_ms":          true,
	"mallocs_per_cell": true,
	"events_per_sec":   false,
}

func main() {
	var (
		quick      = flag.Bool("quick", false, "pinned quick suite (CI configuration: 4 kernels, scale 0.2)")
		full       = flag.Bool("full", false, "full suite: quick sweep, cold 110-cell default sweep, and warm batch benchmark")
		scale      = flag.Float64("scale", 0, "override sweep problem scale (0 = suite default)")
		out        = flag.String("out", "BENCH.json", "write results to this file ('' = stdout only)")
		baseline   = flag.String("baseline", "", "compare against this committed BENCH.json")
		tolerance  = flag.Float64("tolerance", 0.25, "relative slack before a wall-clock metric counts as regressed")
		strict     = flag.Bool("strict", false, "exit non-zero on any regression (default: warn only)")
		gateEngine = flag.Bool("gate-engine", false, "exit non-zero if an engine/* microbenchmark regressed (sweeps stay warn-only)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the last sweep to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile of the last sweep to this file")
	)
	flag.Parse()

	res := Output{
		Schema:     1,
		GoVersion:  runtime.Version(),
		Quick:      *quick,
		Full:       *full,
		Benchmarks: map[string]Metrics{},
	}

	fmt.Println("== engine microbenchmarks ==")
	for name, m := range engineBenchmarks() {
		res.Benchmarks[name] = m
		fmt.Printf("  %-24s %8.1f ns/op  %6.1f allocs/op\n", name, m["ns_per_op"], m["allocs_per_op"])
	}

	// Elastic park/wake latency rides along in every mode. It is warn-only
	// by construction: only engine/* rows can gate, and wall-clock rows are
	// tolerance-compared anyway.
	em, err := elasticBenchmark()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aaws-bench:", err)
		os.Exit(1)
	}
	res.Benchmarks["elastic/park_wake"] = em
	fmt.Printf("  %-24s %8.1f ns/op  (%.0f parks, %.0f wakes over %.0f ms)\n",
		"elastic/park_wake", em["ns_per_op"], em["parks"], em["wakes"], em["wall_ms"])

	// Order matters: quick runs first so its number stays comparable to the
	// cold-process CI smoke run; the default sweep follows (cold except the
	// quick kernels' LUTs); the batch benchmark runs last, fully warm.
	type sweepJob struct {
		name string
		run  func(prof profiles) (Metrics, error)
	}
	var jobsToRun []sweepJob
	quickJob := sweepJob{"sweep/quick_4B4L", func(p profiles) (Metrics, error) {
		return quickSweep(*scale, p)
	}}
	defaultJob := sweepJob{"sweep/default_4B4L", func(p profiles) (Metrics, error) {
		return defaultSweep(*scale, p)
	}}
	batchJob := sweepJob{"batch/default_4B4L", func(p profiles) (Metrics, error) {
		return batchBenchmark(*scale, p)
	}}
	switch {
	case *full:
		jobsToRun = []sweepJob{quickJob, defaultJob, batchJob}
	case *quick:
		jobsToRun = []sweepJob{quickJob}
	default:
		jobsToRun = []sweepJob{defaultJob}
	}

	fmt.Println("== representative sweeps ==")
	for i, job := range jobsToRun {
		var p profiles
		if i == len(jobsToRun)-1 { // profile the mode's primary benchmark
			p = profiles{cpu: *cpuprofile, mem: *memprofile}
		}
		m, err := job.run(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aaws-bench:", err)
			os.Exit(1)
		}
		res.Benchmarks[job.name] = m
		fmt.Printf("  %-24s %.0f ms wall, %.0f cells, %.3g events (%.3g events/sec, %.0f mallocs/cell)\n",
			job.name, m["wall_ms"], m["cells"], m["events"], m["events_per_sec"], m["mallocs_per_cell"])
	}

	if *out != "" {
		if prev, err := readBaseline(*out); err == nil && prev.Reference != nil {
			res.Reference = prev.Reference // carry the documented reference forward
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "aaws-bench:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aaws-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aaws-bench:", err)
			os.Exit(1)
		}
		regressed := compare(base, res, *tolerance)
		if len(regressed) == 0 {
			return
		}
		if *strict {
			os.Exit(1)
		}
		if *gateEngine {
			for _, name := range regressed {
				if strings.HasPrefix(name, "engine/") {
					fmt.Fprintln(os.Stderr, "aaws-bench: engine microbenchmark regressed:", name)
					os.Exit(1)
				}
			}
		}
	}
}

// engineBenchmarks times the schedule/cancel/reschedule hot paths by hand
// (no testing.B in a main package) and measures their steady-state
// allocation rate with testing.AllocsPerRun. Each timing loop is written
// out directly — the same shape as a testing.B loop — because dispatching
// the body through a closure adds ~1.5–2 ns of call overhead, a large
// artifact on a sub-10 ns operation.
func engineBenchmarks() map[string]Metrics {
	const iters = 2_000_000
	fn := func() {}
	out := map[string]Metrics{}

	e := sim.NewEngine()
	for i := 0; i < 10_000; i++ { // warm arena
		e.After(sim.Time(i%97), fn)
		e.Step()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		e.After(sim.Time(i%97), fn)
		e.Step()
	}
	out["engine/schedule_pop"] = Metrics{
		"ns_per_op": float64(time.Since(start).Nanoseconds()) / iters,
		"allocs_per_op": testing.AllocsPerRun(1000, func() {
			e.After(7, fn)
			e.Step()
		}),
	}

	e.Reset()
	for i := 0; i < 10_000; i++ {
		ev := e.After(sim.Time(7+i%13), fn)
		e.After(sim.Time(i%7), fn)
		ev.Cancel()
		e.Step()
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		ev := e.After(sim.Time(7+i%13), fn)
		e.After(sim.Time(i%7), fn)
		ev.Cancel()
		e.Step()
	}
	out["engine/cancel"] = Metrics{
		"ns_per_op": float64(time.Since(start).Nanoseconds()) / iters,
		"allocs_per_op": testing.AllocsPerRun(1000, func() {
			ev := e.After(7, fn)
			e.After(3, fn)
			ev.Cancel()
			e.Step()
		}),
	}
	e.Run(0)

	e.Reset()
	var ev sim.Event
	for i := 0; i < 10_000; i++ {
		ev.Cancel()
		ev = e.After(sim.Time(50+i%31), fn)
		e.After(sim.Time(i%11), fn)
		e.Step()
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		ev.Cancel()
		ev = e.After(sim.Time(50+i%31), fn)
		e.After(sim.Time(i%11), fn)
		e.Step()
	}
	out["engine/reschedule"] = Metrics{
		"ns_per_op": float64(time.Since(start).Nanoseconds()) / iters,
		"allocs_per_op": testing.AllocsPerRun(1000, func() {
			ev.Cancel()
			ev = e.After(53, fn)
			e.After(3, fn)
			e.Step()
		}),
	}
	e.Run(0)
	return out
}

// elasticBenchmark times the elastic park/wake machinery end to end: the
// imbalanced static loop under the base variant parks its starved workers
// and wakes them on surplus every run. ns_per_op is the run's host wall
// time amortized per park-or-wake transition — an upper bound on the
// semaphore bookkeeping plus its simulated-event scheduling, and a direct
// regression signal for the parking hot path.
func elasticBenchmark() (Metrics, error) {
	spec := core.DefaultSpec("loop-static", core.Sys4B4L, wsrt.Base)
	spec.Elastic = true
	spec.Check = false
	const rounds = 20
	if _, err := core.Run(spec); err != nil { // warm LUT and engine caches
		return nil, err
	}
	var parks, wakes int
	start := time.Now()
	for i := 0; i < rounds; i++ {
		res, err := core.Run(spec)
		if err != nil {
			return nil, err
		}
		parks += res.Report.ElasticParks
		wakes += res.Report.ElasticWakes
	}
	wall := time.Since(start)
	transitions := parks + wakes
	if transitions == 0 {
		return nil, fmt.Errorf("elastic benchmark: no park/wake transitions (parking never fired)")
	}
	return Metrics{
		"wall_ms":   float64(wall.Milliseconds()),
		"parks":     float64(parks) / rounds,
		"wakes":     float64(wakes) / rounds,
		"ns_per_op": float64(wall.Nanoseconds()) / float64(transitions),
	}, nil
}

// profiles carries the optional pprof destinations for one measured run.
type profiles struct{ cpu, mem string }

// defaultScale is bench_test.go's benchScale: fast but representative.
const defaultScale = 0.35

// quickSweep measures the CI smoke configuration — 4 kernels at scale 0.2 —
// through the per-cell core.Run path, keeping it a regression signal for
// the single-spec executor path now that sweeps default to RunBatch.
func quickSweep(scale float64, p profiles) (Metrics, error) {
	opt := core.DefaultSweep(core.Sys4B4L)
	opt.Kernels = kernels.Names()[:4]
	opt.Scale = 0.2
	if scale > 0 {
		opt.Scale = scale
	}
	opt.RunAll = func(specs []core.Spec) ([]core.Result, error) {
		results := make([]core.Result, len(specs))
		for i, s := range specs {
			r, err := core.Run(s)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	return measureSweep(opt, p)
}

// defaultSweep measures the full default matrix through the batch path as
// core.Sweep now runs it. LUT state is whatever the process has generated
// so far: cold in the default mode, quick-kernels-warm in -full mode.
func defaultSweep(scale float64, p profiles) (Metrics, error) {
	opt := core.DefaultSweep(core.Sys4B4L)
	opt.Scale = defaultScale
	if scale > 0 {
		opt.Scale = scale
	}
	return measureSweep(opt, p)
}

// measureSweep times one core.Sweep invocation and derives the cell/event
// metrics from its results.
func measureSweep(opt core.SweepOptions, p profiles) (Metrics, error) {
	var cells int
	var events uint64
	runAll := opt.RunAll
	if runAll == nil {
		runAll = core.RunBatch
	}
	opt.RunAll = func(specs []core.Spec) ([]core.Result, error) {
		results, err := runAll(specs)
		if err != nil {
			return nil, err
		}
		cells = len(results)
		for _, r := range results {
			events += r.Report.Events
		}
		return results, nil
	}
	return timed(p, &cells, &events, func() error {
		_, err := core.Sweep(opt)
		return err
	})
}

// batchBenchmark is the pinned warm-steady-state benchmark: the full
// default matrix through core.RunBatch with the LUT cache and warm-engine
// cache already filled by an untimed pass. This is the serving condition —
// a sweep request hitting a warm process — that the sub-300 ms target
// gates.
func batchBenchmark(scale float64, p profiles) (Metrics, error) {
	s := defaultScale
	if scale > 0 {
		s = scale
	}
	var specs []core.Spec
	for _, name := range kernels.Names() {
		for _, v := range wsrt.Variants {
			specs = append(specs, core.Spec{
				Kernel: name, System: core.Sys4B4L, Variant: v,
				Seed: 42, Scale: s,
			})
		}
	}
	if _, err := core.RunBatch(specs); err != nil { // warm LUTs and engines
		return nil, err
	}
	cells := len(specs)
	var events uint64
	return timed(p, &cells, &events, func() error {
		results, err := core.RunBatch(specs)
		if err != nil {
			return err
		}
		events = 0
		for _, r := range results {
			events += r.Report.Events
		}
		return nil
	})
}

// timed runs body under the optional profilers, bracketing it with
// wall-clock and allocation measurements.
func timed(p profiles, cells *int, events *uint64, body func() error) (Metrics, error) {
	if p.cpu != "" {
		f, err := os.Create(p.cpu)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
		defer pprof.StopCPUProfile()
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := body(); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if p.mem != "" {
		f, err := os.Create(p.mem)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return nil, err
		}
	}

	return Metrics{
		"wall_ms":          float64(wall.Milliseconds()),
		"cells":            float64(*cells),
		"events":           float64(*events),
		"events_per_sec":   float64(*events) / wall.Seconds(),
		"mallocs_per_cell": float64(after.Mallocs-before.Mallocs) / float64(*cells),
	}, nil
}

func readBaseline(path string) (Output, error) {
	var out Output
	buf, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(buf, &out)
	return out, err
}

// compare prints a PASS/WARN line per shared metric and returns the names
// of benchmarks that regressed beyond the tolerance. Zero-allocation
// baselines get no relative slack: any allocation at all is a regression.
func compare(base, cur Output, tol float64) []string {
	var regressed []string
	seen := map[string]bool{}
	fmt.Println("== baseline comparison ==")
	for name, bm := range base.Benchmarks {
		cm, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("  SKIP %s: not in current run\n", name)
			continue
		}
		for metric, bv := range bm {
			lower, tracked := lowerIsBetter[metric]
			cv, ok := cm[metric]
			if !tracked || !ok {
				continue
			}
			bad := false
			switch {
			case bv == 0:
				bad = cv > 0 && lower
			case lower:
				bad = cv > bv*(1+tol)
			default:
				bad = cv < bv*(1-tol)
			}
			status := "PASS"
			if bad {
				status = "WARN"
				if !seen[name] {
					seen[name] = true
					regressed = append(regressed, name)
				}
			}
			fmt.Printf("  %s %s/%s: %.4g (baseline %.4g, tolerance %.0f%%)\n",
				status, name, metric, cv, bv, tol*100)
		}
	}
	if len(regressed) > 0 {
		fmt.Println("  regression detected (see WARN lines)")
	}
	return regressed
}
