// Command aaws-table3 regenerates Table III: per-kernel characterization
// (instruction counts, task statistics, and baseline-runtime speedups on
// the 1B7L and 4B4L systems against serial in-order and out-of-order runs).
package main

import (
	"flag"
	"fmt"
	"os"

	"aaws/internal/core"
)

func main() {
	scale := flag.Float64("scale", 1.0, "input size multiplier")
	seed := flag.Uint64("seed", 42, "seed")
	csv := flag.Bool("csv", false, "CSV output")
	flag.Parse()

	rows, err := core.Table3(*seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *csv {
		fmt.Println("name,suite,input,pm,dinst_m,num_tasks,task_size_k,io_cyc_m,eratio,o3,s1b7l_vs_o3,s1b7l_vs_io,s4b4l_vs_o3,s4b4l_vs_io,mpki")
		for _, r := range rows {
			k := r.Kernel
			fmt.Printf("%s,%s,%s,%s,%.1f,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f\n",
				k.Name, k.Suite, k.Input, k.PM, r.DInstM, r.NumTasks, r.TaskSize/1e3,
				r.SerialLittleCycM, k.Alpha, k.Beta,
				r.Speedup1B7LvsO3, r.Speedup1B7LvsIO, r.Speedup4B4LvsO3, r.Speedup4B4LvsIO, k.MPKI)
		}
		return
	}

	fmt.Println("Table III — application kernels (baseline runtime)")
	fmt.Printf("%-10s %-7s %-5s %7s %7s %8s %8s %7s %5s | %8s %8s %8s %8s | %6s\n",
		"name", "suite", "pm", "DInst", "tasks", "tsize", "IO cyc", "ERatio", "O3",
		"1B7Lo3", "1B7Lio", "4B4Lo3", "4B4Lio", "MPKI")
	fmt.Printf("%-10s %-7s %-5s %7s %7s %8s %8s %7s %5s | %8s %8s %8s %8s | %6s\n",
		"", "", "", "(M)", "", "(K)", "(M)", "(a)", "(b)", "", "", "", "", "")
	for _, r := range rows {
		k := r.Kernel
		fmt.Printf("%-10s %-7s %-5s %7.1f %7d %8.1f %8.1f %7.1f %5.1f | %7.1fx %7.1fx %7.1fx %7.1fx | %6.2f\n",
			k.Name, k.Suite, k.PM, r.DInstM, r.NumTasks, r.TaskSize/1e3,
			r.SerialLittleCycM, k.Alpha, k.Beta,
			r.Speedup1B7LvsO3, r.Speedup1B7LvsIO, r.Speedup4B4LvsO3, r.Speedup4B4LvsIO, k.MPKI)
	}
	fmt.Println("\nERatio (alpha) and O3 (beta) are Table III's measured per-kernel ratios, used as model inputs here.")
}
