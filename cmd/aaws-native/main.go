// Command aaws-native regenerates Table II on the real host machine: it
// measures this repository's concurrent work-stealing pool against
// optimized serial code and a central-queue work-sharing pool on five PBBS
// kernels.
//
// The paper compared its C++ runtime against Intel Cilk++ and Intel TBB on
// an 8-core Xeon; neither is available to a pure-Go offline build, so the
// central-queue pool plays the comparison-scheduler role (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"aaws/internal/native"
)

func main() {
	n := flag.Int("n", 1<<20, "base input size")
	workers := flag.Int("workers", 8, "worker goroutines (paper used 8 threads)")
	trials := flag.Int("trials", 3, "best-of trials per measurement")
	seed := flag.Uint64("seed", 7, "input seed")
	flag.Parse()

	fmt.Printf("Table II — native work-stealing runtime vs central-queue pool\n")
	fmt.Printf("host: GOMAXPROCS=%d, %d workers, n=%d, best of %d\n\n",
		runtime.GOMAXPROCS(0), *workers, *n, *trials)
	if runtime.GOMAXPROCS(0) < 2 {
		fmt.Println("NOTE: single-CPU host — parallel speedups are bounded at ~1x;")
		fmt.Println("the comparison degenerates to scheduler-overhead measurement.")
		fmt.Println()
	}

	rows, err := native.Table2(native.Table2Options{
		Seed: *seed, N: *n, Workers: *workers, Trials: *trials,
	}, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	native.WriteTable2(os.Stdout, rows)
	fmt.Println("\npaper (8-core Xeon, vs TBB): dict +10%, radix +14%, rdups +4%, mis -1%, nbody -3%")
}
