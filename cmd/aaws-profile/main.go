// Command aaws-profile renders per-core activity/DVFS profiles: Figure 1
// (convex hull on the baseline 4B4L system) and Figure 7 (radix-2 under
// base, base+p, base+ps, base+psm).
//
// Usage:
//
//	aaws-profile                              # Figure 1 (hull, base)
//	aaws-profile -kernel radix-2 -variants all # Figure 7
//	aaws-profile -kernel radix-2 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aaws/internal/core"
	"aaws/internal/trace"
	"aaws/internal/wsrt"
)

func main() {
	kernel := flag.String("kernel", "hull", "kernel to profile")
	system := flag.String("system", "4B4L", "4B4L or 1B7L")
	variants := flag.String("variants", "base", `comma-separated variants, or "all" for Figure 7's base,base+p,base+ps,base+psm`)
	scale := flag.Float64("scale", 1.0, "input size multiplier")
	seed := flag.Uint64("seed", 42, "seed")
	width := flag.Int("width", 110, "profile width in characters")
	csv := flag.Bool("csv", false, "emit CSV samples instead of ASCII strips")
	svg := flag.Bool("svg", false, "emit a self-contained SVG profile instead of ASCII strips")
	flag.Parse()

	sys, ok := core.ParseSystem(*system)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	var vs []wsrt.Variant
	if *variants == "all" {
		vs = []wsrt.Variant{wsrt.Base, wsrt.BaseP, wsrt.BasePS, wsrt.BasePSM}
	} else {
		for _, s := range strings.Split(*variants, ",") {
			v, ok := wsrt.ParseVariant(s)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown variant %q\n", s)
				os.Exit(2)
			}
			vs = append(vs, v)
		}
	}

	nBig, nLit := sys.Counts()
	names := trace.CoreNames(nBig, nLit)
	var baseTime float64
	for _, v := range vs {
		spec := core.DefaultSpec(*kernel, sys, v)
		spec.Scale = *scale
		spec.Seed = *seed
		spec.WithTrace = true
		res, err := core.Run(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if res.CheckErr != nil {
			fmt.Fprintf(os.Stderr, "VALIDATION FAILED (%s): %v\n", v, res.CheckErr)
			os.Exit(1)
		}
		t := res.Report.ExecTime.Seconds()
		if v == wsrt.Base || baseTime == 0 {
			baseTime = t
		}
		if *csv {
			fmt.Printf("# %s on %s under %s\n", *kernel, sys, v)
			renderOrDie(res.Trace.WriteCSV(os.Stdout, names, *width))
			continue
		}
		if *svg {
			renderOrDie(res.Trace.WriteSVG(os.Stdout, names, *width*8))
			continue
		}
		fmt.Printf("\n=== %s on %s under %s — %v (%.2fx vs base) ===\n",
			*kernel, sys, v, res.Report.ExecTime, baseTime/t)
		renderOrDie(res.Trace.RenderASCII(os.Stdout, names, *width))
	}
}

func renderOrDie(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing profile: %v\n", err)
		os.Exit(1)
	}
}
