// Command aaws-serve runs the simulation-as-a-service HTTP server: jobs are
// validated specs content-addressed by their SHA-256 hash, executed on a
// bounded worker pool, and memoized in an LRU (+ optional on-disk) result
// cache so identical submissions return bit-identical reports without
// re-simulating.
//
// Usage:
//
//	aaws-serve -addr :8080 -workers 8 -cache-size 4096 -cache-dir /var/cache/aaws \
//	           -journal-dir /var/lib/aaws/journal -rate 50 -burst 100
//
//	curl -s localhost:8080/v1/jobs -d '{"kernel":"cilksort","variant":"base+psm"}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/metrics
//
// With -journal-dir every accepted submission is write-ahead logged (fsync
// before the 202), so a crash — SIGKILL, OOM, power loss — loses no accepted
// work: on restart the journal replays and queued/running jobs re-execute
// under their original IDs (determinism + content addressing make the replay
// bit-identical and already-completed jobs free cache hits). /readyz stays
// 503 until replay finishes.
//
// SIGINT/SIGTERM triggers a graceful drain: /healthz flips to 503, new
// submissions are rejected, in-flight jobs finish (bounded by
// -drain-timeout), then the listener closes.
//
// With -worker -coordinator host:port the server also joins a distributed
// sweep fabric: it registers with an aaws-coord coordinator, executes
// dispatched shards through the same bounded executor, and streams results
// back; -remote-cache URL layers the fabric-wide shared result tier under
// the local cache. /readyz reports degraded until registration completes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // /debug/pprof/ on the opt-in -debug-addr listener
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"aaws/internal/fabric"
	"aaws/internal/jobs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
	queueDepth := flag.Int("queue-depth", 1024, "max queued jobs before 429s")
	cacheSize := flag.Int("cache-size", 1024, "in-memory result cache entries")
	cacheDir := flag.String("cache-dir", "", "optional on-disk result store (content-addressed, survives restarts)")
	timeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline (0 = none)")
	retries := flag.Int("retries", 1, "transient-failure retries per job")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	journalDir := flag.String("journal-dir", "", "write-ahead job journal directory (empty = no crash durability)")
	journalSegMB := flag.Int("journal-segment-mb", 4, "journal segment size before rotation+compaction (MiB)")
	rate := flag.Float64("rate", 0, "per-client submissions/sec (0 = unlimited)")
	burst := flag.Int("burst", 20, "per-client token-bucket burst")
	sweepSlots := flag.Int("sweep-slots", 0, "max workers running sweep-class jobs (0 = workers/2, capped below workers)")
	perPrioDepth := flag.Int("max-queue-per-priority", 0, "max queued jobs within one priority level (0 = no per-level cap)")
	maxWait := flag.Duration("max-wait", 0, "shed submissions whose estimated queue wait exceeds this (0 = shed only vs per-job deadlines)")
	maxBodyKB := flag.Int("max-body-kb", 1024, "max request body size (KiB) before 413")
	debugAddr := flag.String("debug-addr", "", "optional debug listener (net/http/pprof under /debug/pprof/); keep it off public interfaces")
	qos := flag.String("qos", "wfq", "ready-queue policy: wfq (tenant-aware weighted-fair) or fifo (legacy global priority queue)")
	tenantWeights := flag.String("tenant-weights", "", "per-tenant WFQ weights, e.g. 'team-a=2,team-b=1'")
	defaultWeight := flag.Float64("default-tenant-weight", 1, "WFQ weight for tenants not listed in -tenant-weights")
	perTenantDepth := flag.Int("max-queue-per-tenant", 0, "max queued jobs per tenant (0 = no per-tenant cap)")
	tenantCacheMB := flag.Int("tenant-cache-mb", 0, "per-tenant result-cache byte quota (MiB, 0 = unlimited)")
	tenantCacheEntries := flag.Int("tenant-cache-entries", 0, "per-tenant result-cache entry quota (0 = unlimited)")
	worker := flag.Bool("worker", false, "register with a fabric coordinator and execute dispatched shards")
	coordAddr := flag.String("coordinator", "", "fabric coordinator TCP address (host:port) for -worker mode")
	workerName := flag.String("worker-name", "", "fabric worker name (default: hostname)")
	remoteCacheURL := flag.String("remote-cache", "", "coordinator HTTP base URL for the shared result-cache tier (e.g. http://coord:8090)")
	remoteCacheTimeout := flag.Duration("remote-cache-timeout", 5*time.Second, "per-request timeout for the shared result-cache tier")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *worker && *coordAddr == "" {
		fail(errors.New("aaws-serve: -worker requires -coordinator host:port"))
	}
	cache, err := jobs.NewCache(*cacheSize, *cacheDir)
	if err != nil {
		fail(err)
	}
	if *tenantCacheMB > 0 || *tenantCacheEntries > 0 {
		cache.SetTenantQuotas(int64(*tenantCacheMB)<<20, *tenantCacheEntries)
	}
	// With a shared tier configured, the executor consults local-then-remote
	// before computing; completed results write through to both.
	var tier jobs.CacheTier = cache
	var remoteCache *fabric.RemoteCache
	if *remoteCacheURL != "" {
		remoteCache = fabric.NewRemoteCacheWith(*remoteCacheURL, fabric.RemoteCacheOptions{
			Timeout: *remoteCacheTimeout,
		})
		tier = jobs.NewTieredCache(cache, remoteCache)
	}
	var policy jobs.SchedPolicy
	switch *qos {
	case "wfq":
		policy = jobs.PolicyWFQ
	case "fifo":
		policy = jobs.PolicyFIFO
	default:
		fail(fmt.Errorf("aaws-serve: -qos must be wfq or fifo, got %q", *qos))
	}
	weights, err := jobs.ParseWeights(*tenantWeights)
	if err != nil {
		fail(err)
	}
	var journal *jobs.Journal
	var pending []jobs.Pending
	if *journalDir != "" {
		journal, pending, err = jobs.OpenJournal(*journalDir, jobs.JournalConfig{
			SegmentBytes: int64(*journalSegMB) << 20,
		})
		if err != nil {
			fail(err)
		}
	}
	slots := *sweepSlots
	if slots <= 0 && *workers > 1 {
		slots = *workers / 2
	}
	if slots >= *workers {
		slots = *workers - 1 // always leave a slot for interactive jobs
	}
	cfg := jobs.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		MaxRetries:     *retries,
		Cache:          tier,
		Admission: jobs.AdmissionConfig{
			PerPriorityDepth: *perPrioDepth,
			PerTenantDepth:   *perTenantDepth,
			SweepSlots:       slots,
			MaxWait:          *maxWait,
		},
		QoS: jobs.QoSConfig{
			Policy:        policy,
			DefaultWeight: *defaultWeight,
			Weights:       weights,
		},
	}
	if journal != nil {
		// Assign only when non-nil: a typed-nil *Journal inside the Store
		// interface would read as "journaled" to the executor.
		cfg.Journal = journal
	}
	ex := jobs.NewExecutor(cfg)
	api := jobs.NewServerWithOptions(ex, jobs.ServerOptions{
		RatePerSec:   *rate,
		Burst:        *burst,
		MaxBodyBytes: int64(*maxBodyKB) << 10,
	})
	srv := &http.Server{Addr: *addr, Handler: api}

	var fw *fabric.Worker
	if *worker {
		name := *workerName
		if name == "" {
			if name, _ = os.Hostname(); name == "" {
				name = fmt.Sprintf("worker-%d", os.Getpid())
			}
		}
		fw, err = fabric.NewWorker(fabric.WorkerConfig{
			Name:      name,
			CoordAddr: *coordAddr,
			Executor:  ex,
		})
		if err != nil {
			fail(err)
		}
		if remoteCache != nil {
			// The cache tier was built before the worker existed; bind the
			// worker's registration epoch to it now so cache fills carry the
			// fence headers.
			remoteCache.SetEpochSource(fw.EpochInfo)
		}
	}

	if *debugAddr != "" {
		// The pprof mux registers on http.DefaultServeMux at import; serve
		// it on its own opt-in listener so profiling endpoints never share
		// a port with the public API.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "aaws-serve: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("aaws-serve debug (pprof) on %s\n", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Listen before replaying so health probes see the process, but hold
	// /readyz at 503 until the queue is rebuilt.
	if len(pending) > 0 {
		api.SetReady(false)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("aaws-serve listening on %s (%d workers, qos %s, cache %d", *addr, *workers, policy, *cacheSize)
	if *cacheDir != "" {
		fmt.Printf(" + disk %s", *cacheDir)
	}
	if journal != nil {
		fmt.Printf(", journal %s", *journalDir)
	}
	if *remoteCacheURL != "" {
		fmt.Printf(", remote cache %s", *remoteCacheURL)
	}
	fmt.Println(")")
	if len(pending) > 0 {
		n, err := ex.Recover(pending)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aaws-serve: journal replay stopped after %d/%d jobs: %v\n", n, len(pending), err)
		} else {
			fmt.Printf("aaws-serve: recovered %d journaled job(s)\n", n)
		}
		api.SetReady(true)
	}

	// Worker registration happens after journal replay so recovered work is
	// schedulable before fabric shards start arriving; /readyz reports
	// degraded until the coordinator has acknowledged the hello.
	if fw != nil {
		api.SetPhase("worker registration")
		go func() { _ = fw.Run(ctx) }()
		go func() {
			select {
			case <-fw.Ready():
				api.SetPhase("")
				fmt.Printf("aaws-serve: registered with coordinator %s\n", *coordAddr)
			case <-ctx.Done():
			}
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("aaws-serve: draining (new submissions rejected)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := ex.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "aaws-serve: drain incomplete: %v\n", err)
	}
	ex.Close()
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "aaws-serve: journal close: %v\n", err)
		}
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "aaws-serve: shutdown: %v\n", err)
	}
	fmt.Println("aaws-serve: stopped")
}
