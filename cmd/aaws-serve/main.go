// Command aaws-serve runs the simulation-as-a-service HTTP server: jobs are
// validated specs content-addressed by their SHA-256 hash, executed on a
// bounded worker pool, and memoized in an LRU (+ optional on-disk) result
// cache so identical submissions return bit-identical reports without
// re-simulating.
//
// Usage:
//
//	aaws-serve -addr :8080 -workers 8 -cache-size 4096 -cache-dir /var/cache/aaws
//
//	curl -s localhost:8080/v1/jobs -d '{"kernel":"cilksort","variant":"base+psm"}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM triggers a graceful drain: /healthz flips to 503, new
// submissions are rejected, in-flight jobs finish (bounded by
// -drain-timeout), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"aaws/internal/jobs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
	queueDepth := flag.Int("queue-depth", 1024, "max queued jobs before 429s")
	cacheSize := flag.Int("cache-size", 1024, "in-memory result cache entries")
	cacheDir := flag.String("cache-dir", "", "optional on-disk result store (content-addressed, survives restarts)")
	timeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline (0 = none)")
	retries := flag.Int("retries", 1, "transient-failure retries per job")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	flag.Parse()

	cache, err := jobs.NewCache(*cacheSize, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ex := jobs.NewExecutor(jobs.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		MaxRetries:     *retries,
		Cache:          cache,
	})
	srv := &http.Server{Addr: *addr, Handler: jobs.NewServer(ex)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("aaws-serve listening on %s (%d workers, cache %d", *addr, *workers, *cacheSize)
	if *cacheDir != "" {
		fmt.Printf(" + disk %s", *cacheDir)
	}
	fmt.Println(")")

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("aaws-serve: draining (new submissions rejected)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := ex.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "aaws-serve: drain incomplete: %v\n", err)
	}
	ex.Close()
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "aaws-serve: shutdown: %v\n", err)
	}
	fmt.Println("aaws-serve: stopped")
}
